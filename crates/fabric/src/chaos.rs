//! Deterministic fault injection: the [`ChaosFabric`] wrapper and the
//! frame-level [`WireChaos`] hook it installs into socket backends.
//!
//! The paper's premise is that k concurrent objects drive the fabric
//! *harder* — which on a real network means more frames in flight to
//! drop, reorder, duplicate and corrupt. The chaos layer proves the
//! collectives stay byte-correct under exactly that pressure,
//! deterministically: every fault decision comes from a seeded
//! xorshift64* stream ([`ChaosRng`]), so a failing run reproduces from
//! its seed.
//!
//! **Per-class streams.** Each fault class (drop, dup, corrupt, ack
//! drop, delay, kill…) draws from its *own* forked sub-stream
//! ([`ChaosRng::fork`]). With one shared stream, every configuration
//! replayed the same fate prefix — a short run with `drop:0.05` and a
//! short run with `drop:0.05,corrupt:0.02` consumed the stream
//! differently, and adding one fault class silently reshuffled all the
//! others. Forked streams make each class's decisions a pure function
//! of (seed, class, frame index): adding corruption cannot move where
//! the drops land.
//!
//! Faults come in three tiers:
//!
//! * **Frame-level** (drop, duplicate, corrupt) — these violate the
//!   reliable wire and are only recoverable by a backend with
//!   retransmit, sequence dedup and checksums. `ChaosFabric` offers the
//!   backend a shared [`WireChaos`] via [`Fabric::install_chaos`];
//!   `TcpFabric` accepts and consults it for every eager frame *below*
//!   sequence-number assignment, so a dropped frame looks exactly like
//!   first-transmission loss, a duplicate like a spurious retransmit,
//!   and a corrupted frame like line noise the CRC must catch.
//!   Corruption happens *post-encode*: the backend sends a bit-flipped
//!   copy of the real bytes while its retransmit table keeps the
//!   pristine original. Backends that decline (in-process delivery has
//!   no wire) simply never see these faults.
//! * **Topology-level** (directed link faults `link:A>B`, symmetric
//!   partitions `part:0|1,2`) — a [`WireChaos::cut`] link eats *every*
//!   frame crossing it, first transmissions and retransmits and
//!   heartbeats alike, which is what a real partition does. These are
//!   what the quorum rule in `rt::ft` is tested against. Groups are
//!   node indices (max 64 nodes).
//! * **Interface-level** (delay jitter, mid-run lane kills) — safe under
//!   any backend. Delays perturb thread interleavings and hold-back
//!   pressure; lane kills exercise [`Fabric::kill_lane`] degradation.
//!
//! Configuration rides the environment so any run can become a chaos
//! run without code changes:
//!
//! ```text
//! PIPMCOLL_CHAOS=drop:0.05,dup:0.02,corrupt:0.02,delay:5ms,lane_kill:1
//! PIPMCOLL_CHAOS=part:0|1,2        # node 0 cut off from nodes 1 and 2
//! PIPMCOLL_CHAOS=link:1>0          # node 1's frames to node 0 vanish
//! PIPMCOLL_CHAOS_SEED=42           # optional, default 1
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::error::{FabricDiag, FabricError, FabricResult};
use crate::stats::FabricStats;
use crate::{ChanKey, Fabric};

/// Minimal xorshift64* generator: deterministic for a given seed, no
/// external crates. This is the workspace's one PRNG — the integration
/// suite re-exports it as `TestRng`.
pub struct ChaosRng {
    state: u64,
    /// The construction seed, kept so [`ChaosRng::fork`] derives
    /// sub-streams from the *origin*, independent of how many values
    /// this stream has already produced.
    seed: u64,
}

impl ChaosRng {
    /// Seeded generator (seed 0 is mapped to a fixed odd constant).
    pub fn new(seed: u64) -> Self {
        let s = if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        };
        ChaosRng { state: s, seed: s }
    }

    /// Derive an independent sub-stream for `label`. Forking is a pure
    /// function of the construction seed and the label — *not* of how
    /// many values have been drawn — so per-fault-class streams stay
    /// aligned across configurations: the "drop" stream of seed 42 is
    /// the same stream whether or not "corrupt" was also configured.
    pub fn fork(&self, label: &str) -> ChaosRng {
        // FNV-1a over the label, mixed into the seed with an odd
        // rotation so `fork("ab")` and `fork("ba")` land far apart.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in label.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        ChaosRng::new(self.seed ^ h.rotate_left(17))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform boolean.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Parsed chaos parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Probability an eager frame's first transmission is dropped.
    pub drop: f64,
    /// Probability an eager frame is sent twice.
    pub dup: f64,
    /// Probability an eager frame's bytes are bit-flipped post-encode
    /// (the receiver's CRC-32C must catch it; retransmit recovers).
    pub corrupt: f64,
    /// Probability a standalone cumulative-ack frame is dropped (the
    /// sender's retransmit and the receiver's dedup must absorb it).
    pub ack_drop: f64,
    /// Directed link fault: every frame from node `.0` to node `.1`
    /// vanishes (first transmissions, retransmits and heartbeats alike).
    pub link: Option<(usize, usize)>,
    /// Symmetric partition, as two disjoint node-group bitmasks; zero
    /// masks mean no partition. Frames between the groups vanish in
    /// both directions.
    pub part_a: u64,
    /// Second partition group (see [`ChaosConfig::part_a`]).
    pub part_b: u64,
    /// Upper bound of the uniform per-send delay (0 disables).
    pub delay: Duration,
    /// Number of lanes to kill mid-run.
    pub lane_kill: usize,
    /// Send index at which the first kill fires (subsequent kills fire
    /// at the same spacing); `None` draws it from the seed.
    pub kill_after: Option<u64>,
    /// RNG seed for every fault decision.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            drop: 0.0,
            dup: 0.0,
            corrupt: 0.0,
            ack_drop: 0.0,
            link: None,
            part_a: 0,
            part_b: 0,
            delay: Duration::ZERO,
            lane_kill: 0,
            kill_after: None,
            seed: 1,
        }
    }
}

impl ChaosConfig {
    /// Parse the `PIPMCOLL_CHAOS` grammar:
    /// `drop:<prob>,dup:<prob>,corrupt:<prob>,ack_drop:<prob>,`
    /// `delay:<ms>ms,lane_kill:<n>,link:<a>><b>,part:<ids>|<ids>`
    /// — every field optional, any order. Partition groups are
    /// comma-separated node ids (`part:0|1,2` puts node 0 alone against
    /// nodes 1 and 2), which is why tokenization re-joins a bare number
    /// onto the field before it.
    pub fn parse(spec: &str) -> Result<ChaosConfig, String> {
        let mut cfg = ChaosConfig::default();
        // Split on ',', then fold tokens lacking ':' back into their
        // predecessor — `part:0|1,2` is one field, not two.
        let mut fields: Vec<String> = Vec::new();
        for raw in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            if raw.contains(':') {
                fields.push(raw.to_string());
            } else if let Some(last) = fields.last_mut() {
                last.push(',');
                last.push_str(raw);
            } else {
                return Err(format!("chaos field {raw:?} is not key:value"));
            }
        }
        for part in &fields {
            let (key, val) = part
                .split_once(':')
                .ok_or_else(|| format!("chaos field {part:?} is not key:value"))?;
            match key.trim() {
                "drop" => cfg.drop = parse_prob("drop", val)?,
                "dup" => cfg.dup = parse_prob("dup", val)?,
                "corrupt" => cfg.corrupt = parse_prob("corrupt", val)?,
                "ack_drop" => cfg.ack_drop = parse_prob("ack_drop", val)?,
                "link" => {
                    let (a, b) = val
                        .trim()
                        .split_once('>')
                        .ok_or_else(|| format!("chaos link {val:?} is not a>b"))?;
                    let a = parse_node("link", a)?;
                    let b = parse_node("link", b)?;
                    if a == b {
                        return Err(format!("chaos link {a}>{b} names one node twice"));
                    }
                    cfg.link = Some((a, b));
                }
                "part" => {
                    let (ga, gb) = val
                        .trim()
                        .split_once('|')
                        .ok_or_else(|| format!("chaos part {val:?} is not group|group"))?;
                    cfg.part_a = parse_group(ga)?;
                    cfg.part_b = parse_group(gb)?;
                    if cfg.part_a & cfg.part_b != 0 {
                        return Err(format!("chaos part {val:?} groups overlap"));
                    }
                }
                "delay" => {
                    let ms = val
                        .trim()
                        .strip_suffix("ms")
                        .unwrap_or(val.trim())
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("chaos delay {val:?} is not a millisecond count"))?;
                    cfg.delay = Duration::from_millis(ms);
                }
                "lane_kill" => {
                    cfg.lane_kill = val
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| format!("chaos lane_kill {val:?} is not a count"))?;
                }
                other => return Err(format!("unknown chaos field {other:?}")),
            }
        }
        if cfg.drop + cfg.dup + cfg.corrupt >= 1.0 {
            return Err(format!(
                "chaos drop ({}) + dup ({}) + corrupt ({}) must leave room for delivery",
                cfg.drop, cfg.dup, cfg.corrupt
            ));
        }
        Ok(cfg)
    }

    /// The configuration selected by `PIPMCOLL_CHAOS` /
    /// `PIPMCOLL_CHAOS_SEED`, or `None` when chaos is off.
    ///
    /// # Panics
    /// Panics on a malformed spec or seed — a typo in a fault-injection
    /// campaign must fail loudly, not silently run without faults.
    pub fn from_env() -> Option<ChaosConfig> {
        let spec = std::env::var("PIPMCOLL_CHAOS").ok()?;
        let mut cfg = ChaosConfig::parse(&spec)
            .unwrap_or_else(|e| panic!("PIPMCOLL_CHAOS={spec:?} is malformed: {e}"));
        if let Some(seed) = crate::env::read_u64("PIPMCOLL_CHAOS_SEED", "a u64 seed")
            .unwrap_or_else(|e| panic!("{e}"))
        {
            cfg.seed = seed;
        }
        Some(cfg)
    }
}

fn parse_prob(name: &str, val: &str) -> Result<f64, String> {
    let p = val
        .trim()
        .parse::<f64>()
        .map_err(|_| format!("chaos {name} {val:?} is not a probability"))?;
    if !(0.0..1.0).contains(&p) {
        return Err(format!("chaos {name} {p} outside [0, 1)"));
    }
    Ok(p)
}

fn parse_node(name: &str, val: &str) -> Result<usize, String> {
    let n = val
        .trim()
        .parse::<usize>()
        .map_err(|_| format!("chaos {name} node {val:?} is not a node index"))?;
    if n >= 64 {
        return Err(format!("chaos {name} node {n} outside the 64-node limit"));
    }
    Ok(n)
}

fn parse_group(group: &str) -> Result<u64, String> {
    let mut mask = 0u64;
    for id in group.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        mask |= 1u64 << parse_node("part", id)?;
    }
    if mask == 0 {
        return Err(format!("chaos part group {group:?} is empty"));
    }
    Ok(mask)
}

/// What a backend should do with one outgoing frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFate {
    /// Send it normally.
    Deliver,
    /// Pretend the wire ate it (the backend's retransmit must recover).
    Drop,
    /// Send it twice (the receiver's dedup must collapse it).
    Dup,
    /// Send a bit-flipped copy of the encoded bytes (the receiver's
    /// checksum must reject it; the backend keeps the pristine bytes
    /// for retransmit).
    Corrupt,
}

/// Runtime-mutable topology faults, one lock so a cut decision is one
/// acquisition. Initialized from the config; tests flip them mid-run to
/// model partitions that heal and links that brown out.
struct LinkFaults {
    link: Option<(usize, usize)>,
    part: Option<(u64, u64)>,
    /// A lane shedding frames: `(lane, drop probability)` — the
    /// ingredient of a gray failure, where a path is degraded but not
    /// dead.
    lane_drop: Option<(usize, f64)>,
}

/// The frame-level fault stream a chaotic wrapper shares with its
/// backend via [`Fabric::install_chaos`].
pub struct WireChaos {
    drop: f64,
    dup: f64,
    corrupt: f64,
    ack_drop: f64,
    // One forked stream per fault class (see the module doc): each
    // class's decisions depend only on (seed, class, frame index).
    drop_rng: Mutex<ChaosRng>,
    dup_rng: Mutex<ChaosRng>,
    corrupt_rng: Mutex<ChaosRng>,
    flip_rng: Mutex<ChaosRng>,
    ack_rng: Mutex<ChaosRng>,
    lane_rng: Mutex<ChaosRng>,
    faults: Mutex<LinkFaults>,
    dropped: AtomicU64,
    dupped: AtomicU64,
    corrupted: AtomicU64,
    acks_dropped: AtomicU64,
    cut_frames: AtomicU64,
    lane_dropped: AtomicU64,
}

impl WireChaos {
    /// A fault stream for `cfg`, seeded from `cfg.seed`.
    pub fn new(cfg: &ChaosConfig) -> Self {
        // Distinct base from the interface-level RNG so installing wire
        // chaos does not perturb delay/kill decisions.
        let base = ChaosRng::new(cfg.seed.wrapping_mul(0x9E37_79B9).max(1));
        WireChaos {
            drop: cfg.drop,
            dup: cfg.dup,
            corrupt: cfg.corrupt,
            ack_drop: cfg.ack_drop,
            drop_rng: Mutex::new(base.fork("drop")),
            dup_rng: Mutex::new(base.fork("dup")),
            corrupt_rng: Mutex::new(base.fork("corrupt")),
            flip_rng: Mutex::new(base.fork("flip")),
            ack_rng: Mutex::new(base.fork("ack_drop")),
            lane_rng: Mutex::new(base.fork("lane_drop")),
            faults: Mutex::new(LinkFaults {
                link: cfg.link,
                part: if cfg.part_a != 0 || cfg.part_b != 0 {
                    Some((cfg.part_a, cfg.part_b))
                } else {
                    None
                },
                lane_drop: None,
            }),
            dropped: AtomicU64::new(0),
            dupped: AtomicU64::new(0),
            corrupted: AtomicU64::new(0),
            acks_dropped: AtomicU64::new(0),
            cut_frames: AtomicU64::new(0),
            lane_dropped: AtomicU64::new(0),
        }
    }

    /// Whether the directed edge `from → to` (node indices) is severed
    /// by a link fault or partition. Pure topology — no randomness, no
    /// counters — so backends can consult it on *every* path a byte
    /// takes out of a node: first transmissions, control frames,
    /// retransmits and heartbeats. A partition that spared retransmits
    /// would not be a partition.
    pub fn cut(&self, from: usize, to: usize) -> bool {
        if from == to {
            return false;
        }
        let Ok(f) = self.faults.lock() else {
            return false;
        };
        if f.link == Some((from, to)) {
            return true;
        }
        if let Some((a, b)) = f.part {
            let (fa, ta) = (a >> from & 1 != 0, a >> to & 1 != 0);
            let (fb, tb) = (b >> from & 1 != 0, b >> to & 1 != 0);
            if (fa && tb) || (fb && ta) {
                return true;
            }
        }
        false
    }

    /// Record one frame eaten by a [`WireChaos::cut`] edge.
    pub fn note_cut(&self) {
        self.cut_frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Install, replace or clear (with `None`) the directed link fault
    /// at runtime.
    pub fn set_link(&self, link: Option<(usize, usize)>) {
        if let Ok(mut f) = self.faults.lock() {
            f.link = link;
        }
    }

    /// Install, replace or clear (with `None`) the partition at runtime.
    pub fn set_partition(&self, part: Option<(u64, u64)>) {
        if let Ok(mut f) = self.faults.lock() {
            f.part = part;
        }
    }

    /// Make `lane` shed frames with probability `p` — a gray failure:
    /// the lane is degraded, not dead, and the backend's brownout
    /// detector is expected to route around it.
    pub fn degrade_lane(&self, lane: usize, p: f64) {
        if let Ok(mut f) = self.faults.lock() {
            f.lane_drop = Some((lane, p.clamp(0.0, 1.0)));
        }
    }

    /// Clear any lane degradation (the gray failure lifts).
    pub fn heal_lanes(&self) {
        if let Ok(mut f) = self.faults.lock() {
            f.lane_drop = None;
        }
    }

    /// Roll the fate of one outgoing frame on the directed edge
    /// `from → to` (node indices) over `lane`. A cut edge always eats
    /// the frame; a degraded lane sheds it with the configured
    /// probability; otherwise the per-class streams decide. Every class
    /// draws every call — stream stability is what makes one class's
    /// decisions independent of the others' outcomes.
    pub fn fate_for(&self, from: usize, to: usize, lane: usize) -> FrameFate {
        if self.cut(from, to) {
            self.note_cut();
            return FrameFate::Drop;
        }
        if let Ok(f) = self.faults.lock() {
            if let Some((l, p)) = f.lane_drop {
                if l == lane {
                    drop(f);
                    let u = match self.lane_rng.lock() {
                        Ok(mut rng) => rng.unit(),
                        Err(_) => 1.0,
                    };
                    if u < p {
                        self.lane_dropped.fetch_add(1, Ordering::Relaxed);
                        return FrameFate::Drop;
                    }
                }
            }
        }
        self.fate()
    }

    /// Roll the fate of one outgoing frame from the per-class streams
    /// alone (no topology faults — see [`WireChaos::fate_for`]).
    pub fn fate(&self) -> FrameFate {
        // All classes draw unconditionally, then priority picks
        // drop > dup > corrupt: the observed dup rate is (1−p_drop)·p_dup
        // and the corrupt rate (1−p_drop)(1−p_dup)·p_corrupt.
        let d = match self.drop_rng.lock() {
            Ok(mut rng) => rng.unit(),
            // A poisoned RNG must not take down a progress thread — the
            // frame just gets delivered.
            Err(_) => return FrameFate::Deliver,
        };
        let p = match self.dup_rng.lock() {
            Ok(mut rng) => rng.unit(),
            Err(_) => return FrameFate::Deliver,
        };
        let c = match self.corrupt_rng.lock() {
            Ok(mut rng) => rng.unit(),
            Err(_) => return FrameFate::Deliver,
        };
        if d < self.drop {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            FrameFate::Drop
        } else if p < self.dup {
            self.dupped.fetch_add(1, Ordering::Relaxed);
            FrameFate::Dup
        } else if c < self.corrupt {
            self.corrupted.fetch_add(1, Ordering::Relaxed);
            FrameFate::Corrupt
        } else {
            FrameFate::Deliver
        }
    }

    /// Flip 1–3 seeded bits in an encoded frame, confined to the CRC
    /// field and payload (`wire::HEADER_LEN − 4` onward). Flips there
    /// always present as a checksum mismatch — the silent-drop path the
    /// retransmit machinery absorbs — never as a garbled header, which
    /// would tear the whole connection down and test reconnect instead
    /// of integrity.
    pub fn corrupt_bytes(&self, bytes: &mut [u8]) {
        let lo = crate::wire::HEADER_LEN - 4;
        if bytes.len() <= lo {
            return;
        }
        let Ok(mut rng) = self.flip_rng.lock() else {
            return;
        };
        // An odd flip count can never cancel itself out, so a frame
        // rolled Corrupt is always genuinely damaged — the receiver-side
        // `corrupt_frames ≥ corrupted()` accounting depends on it.
        let flips = if rng.flip() { 1 } else { 3 };
        for _ in 0..flips {
            let at = rng.range(lo, bytes.len());
            bytes[at] ^= 1 << rng.range(0, 8);
        }
    }

    /// Roll whether one outgoing standalone ack frame on the edge
    /// `from → to` is eaten by the wire. `true` means drop it.
    pub fn ack_fate_for(&self, from: usize, to: usize) -> bool {
        if self.cut(from, to) {
            self.note_cut();
            return true;
        }
        self.ack_fate()
    }

    /// Roll whether one outgoing standalone ack frame is eaten by the
    /// wire, from the ack stream alone. `true` means drop it. Separate
    /// from [`WireChaos::fate`] so tests can target the lost-ack
    /// recovery path precisely: the data frame arrives, its ack dies,
    /// and the sender's retransmit must be collapsed by receiver dedup.
    pub fn ack_fate(&self) -> bool {
        if self.ack_drop == 0.0 {
            return false;
        }
        let u = match self.ack_rng.lock() {
            Ok(mut rng) => rng.unit(),
            Err(_) => return false,
        };
        if u < self.ack_drop {
            self.acks_dropped.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Frames dropped so far (probabilistic drops only; cut and
    /// lane-degrade losses have their own counters).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Frames duplicated so far.
    pub fn dupped(&self) -> u64 {
        self.dupped.load(Ordering::Relaxed)
    }

    /// Frames bit-flipped so far.
    pub fn corrupted(&self) -> u64 {
        self.corrupted.load(Ordering::Relaxed)
    }

    /// Standalone ack frames dropped so far.
    pub fn acks_dropped(&self) -> u64 {
        self.acks_dropped.load(Ordering::Relaxed)
    }

    /// Frames eaten by cut links/partitions so far.
    pub fn cut_frames(&self) -> u64 {
        self.cut_frames.load(Ordering::Relaxed)
    }

    /// Frames shed by a degraded lane so far.
    pub fn lane_dropped(&self) -> u64 {
        self.lane_dropped.load(Ordering::Relaxed)
    }
}

/// A [`Fabric`] wrapper injecting deterministic, seeded faults.
///
/// Works over any backend: frame-level faults (drop/dup/corrupt) and
/// topology faults (link/part) are delegated to the backend through
/// [`Fabric::install_chaos`] and silently skipped if it declines;
/// delays and lane kills are applied at this layer.
pub struct ChaosFabric<F: Fabric> {
    inner: F,
    cfg: ChaosConfig,
    wire: Arc<WireChaos>,
    /// Whether the backend consumes frame-level faults.
    wired: bool,
    /// Interface-level per-class streams (forked like the wire's, and
    /// for the same reason: a delay decision must not move a kill).
    delay_rng: Mutex<ChaosRng>,
    kill_rng: Mutex<ChaosRng>,
    sends: AtomicU64,
    /// Non-blocking receive polls; counted toward kill scheduling so a
    /// poll-driven consumer (the svc engine never calls `send` between
    /// arrivals it is waiting on) still reaches scheduled lane kills.
    polls: AtomicU64,
    /// Op index at which the next lane kill fires.
    next_kill: AtomicU64,
    kills_left: AtomicUsize,
    kill_spacing: u64,
    /// Lanes this wrapper killed, merged into [`Fabric::health`] so a
    /// chaos run exercises the same detection path as a real TCP lane
    /// death even over backends whose own health view is empty.
    killed_lanes: Mutex<Vec<usize>>,
}

impl<F: Fabric> ChaosFabric<F> {
    /// Wrap `inner` with the faults described by `cfg`.
    pub fn new(inner: F, cfg: ChaosConfig) -> Self {
        let wire = Arc::new(WireChaos::new(&cfg));
        let wired = inner.install_chaos(Arc::clone(&wire));
        let base = ChaosRng::new(cfg.seed);
        let mut kill_rng = base.fork("kill");
        let spacing = cfg
            .kill_after
            .unwrap_or_else(|| kill_rng.range(20, 80) as u64)
            .max(1);
        ChaosFabric {
            inner,
            cfg,
            wire,
            wired,
            delay_rng: Mutex::new(base.fork("delay")),
            kill_rng: Mutex::new(kill_rng),
            sends: AtomicU64::new(0),
            polls: AtomicU64::new(0),
            next_kill: AtomicU64::new(spacing),
            kills_left: AtomicUsize::new(cfg.lane_kill),
            kill_spacing: spacing,
            killed_lanes: Mutex::new(Vec::new()),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// The shared frame-level fault stream (for test assertions and
    /// runtime fault mutation).
    pub fn wire(&self) -> &WireChaos {
        &self.wire
    }

    /// Whether the backend accepted frame-level fault injection.
    pub fn wired(&self) -> bool {
        self.wired
    }

    /// Fire any lane kill scheduled at or before send index `n`.
    fn maybe_kill(&self, n: u64) {
        if self.kills_left.load(Ordering::Relaxed) == 0
            || n < self.next_kill.load(Ordering::Relaxed)
        {
            return;
        }
        // One thread wins the right to perform this kill.
        if self
            .kills_left
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |k| k.checked_sub(1))
            .is_err()
        {
            return;
        }
        self.next_kill
            .fetch_add(self.kill_spacing, Ordering::Relaxed);
        let lanes = self.inner.lanes();
        let start = match self.kill_rng.lock() {
            Ok(mut rng) => rng.range(0, lanes.max(1)),
            Err(_) => 0,
        };
        // The backend refuses to kill its last surviving lane; try each
        // candidate once.
        for i in 0..lanes {
            let lane = (start + i) % lanes;
            if self.inner.kill_lane(lane) {
                self.note_killed(lane);
                return;
            }
        }
    }

    fn note_killed(&self, lane: usize) {
        if let Ok(mut g) = self.killed_lanes.lock() {
            if !g.contains(&lane) {
                g.push(lane);
            }
        }
    }
}

impl<F: Fabric> Fabric for ChaosFabric<F> {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn lanes(&self) -> usize {
        self.inner.lanes()
    }

    fn send(&self, key: ChanKey, payload: Vec<u8>) -> FabricResult<()> {
        let n = self.sends.fetch_add(1, Ordering::Relaxed);
        self.maybe_kill(n);
        if !self.cfg.delay.is_zero() {
            let jitter = match self.delay_rng.lock() {
                Ok(mut rng) => self.cfg.delay.mul_f64(rng.unit()),
                Err(_) => Duration::ZERO,
            };
            if !jitter.is_zero() {
                std::thread::sleep(jitter);
            }
        }
        self.inner.send(key, payload)
    }

    fn recv_within(&self, key: ChanKey, timeout: Duration) -> FabricResult<Vec<u8>> {
        self.inner.recv_within(key, timeout)
    }

    fn try_recv(&self, key: ChanKey) -> FabricResult<Option<Vec<u8>>> {
        // Polls advance the kill schedule alongside sends: a consumer
        // that only polls between arrivals must still hit scheduled
        // kills. No delay jitter here — it would serialize a poll loop.
        let n = self.sends.load(Ordering::Relaxed) + self.polls.fetch_add(1, Ordering::Relaxed);
        self.maybe_kill(n);
        self.inner.try_recv(key)
    }

    fn reset(&self) {
        self.inner.reset();
    }

    fn stats(&self) -> FabricStats {
        self.inner.stats()
    }

    fn diag(&self) -> FabricDiag {
        self.inner.diag()
    }

    fn drain_errors(&self) -> Vec<FabricError> {
        self.inner.drain_errors()
    }

    fn kill_lane(&self, lane: usize) -> bool {
        let ok = self.inner.kill_lane(lane);
        if ok {
            self.note_killed(lane);
        }
        ok
    }

    fn health(&self) -> crate::FabricHealth {
        let mut h = self.inner.health();
        // Injected lane kills show up in the health view even when the
        // backend's own view is empty (e.g. in-process delivery), so
        // detection sees chaos and real TCP failures identically.
        if let Ok(g) = self.killed_lanes.lock() {
            for &lane in g.iter() {
                if !h.dead_lanes.contains(&lane) {
                    h.dead_lanes.push(lane);
                }
            }
        }
        h.dead_lanes.sort_unstable();
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InProcFabric;

    #[test]
    fn parse_full_spec() {
        let cfg =
            ChaosConfig::parse("drop:0.05,dup:0.02,corrupt:0.02,delay:5ms,lane_kill:1").unwrap();
        assert_eq!(cfg.drop, 0.05);
        assert_eq!(cfg.dup, 0.02);
        assert_eq!(cfg.corrupt, 0.02);
        assert_eq!(cfg.delay, Duration::from_millis(5));
        assert_eq!(cfg.lane_kill, 1);
    }

    #[test]
    fn parse_partial_and_unsuffixed_delay() {
        let cfg = ChaosConfig::parse("delay:3").unwrap();
        assert_eq!(cfg.delay, Duration::from_millis(3));
        assert_eq!(cfg.drop, 0.0);
        assert_eq!(ChaosConfig::parse("").unwrap(), ChaosConfig::default());
    }

    #[test]
    fn parse_topology_faults() {
        let cfg = ChaosConfig::parse("link:1>0").unwrap();
        assert_eq!(cfg.link, Some((1, 0)));
        // The comma inside a partition group must survive tokenization.
        let cfg = ChaosConfig::parse("part:0|1,2,drop:0.1").unwrap();
        assert_eq!(cfg.part_a, 0b001);
        assert_eq!(cfg.part_b, 0b110);
        assert_eq!(cfg.drop, 0.1);
        let cfg = ChaosConfig::parse("part:0,3|1,2").unwrap();
        assert_eq!(cfg.part_a, 0b1001);
        assert_eq!(cfg.part_b, 0b0110);
    }

    #[test]
    fn parse_ack_drop() {
        let cfg = ChaosConfig::parse("ack_drop:0.25").unwrap();
        assert_eq!(cfg.ack_drop, 0.25);
        let wire = WireChaos::new(&cfg);
        let n = 10_000;
        let mut dropped = 0;
        for _ in 0..n {
            if wire.ack_fate() {
                dropped += 1;
            }
        }
        assert_eq!(wire.acks_dropped(), dropped);
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.03, "ack drop rate {rate}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ChaosConfig::parse("drop:1.5").is_err());
        assert!(ChaosConfig::parse("drop=0.1").is_err());
        assert!(ChaosConfig::parse("frobnicate:1").is_err());
        assert!(ChaosConfig::parse("drop:0.6,dup:0.5").is_err());
        assert!(
            ChaosConfig::parse("drop:0.5,dup:0.3,corrupt:0.3").is_err(),
            "corrupt counts against the delivery budget"
        );
        assert!(ChaosConfig::parse("link:1>1").is_err());
        assert!(ChaosConfig::parse("link:1-0").is_err());
        assert!(ChaosConfig::parse("part:0|0,1").is_err(), "overlap");
        assert!(ChaosConfig::parse("part:0").is_err(), "one group");
        assert!(ChaosConfig::parse("part:|0").is_err(), "empty group");
        assert!(ChaosConfig::parse("part:0|99").is_err(), "node over 64");
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = ChaosRng::new(42);
        let mut b = ChaosRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let u = ChaosRng::new(7).unit();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn fork_is_independent_of_draw_position() {
        // Forking derives from the construction seed, so a stream that
        // has already produced values forks the same sub-stream as a
        // fresh twin — per-class streams cannot drift with call order.
        let mut a = ChaosRng::new(42);
        let b = ChaosRng::new(42);
        for _ in 0..17 {
            a.next_u64();
        }
        assert_eq!(a.fork("drop").next_u64(), b.fork("drop").next_u64());
        // Distinct labels give distinct streams.
        assert_ne!(b.fork("drop").next_u64(), b.fork("dup").next_u64());
        assert_ne!(b.fork("ab").next_u64(), b.fork("ba").next_u64());
    }

    #[test]
    fn adding_a_fault_class_does_not_move_the_others() {
        // The PR 3 gotcha: with one shared stream, configuring corrupt
        // reshuffled where drops landed. Forked per-class streams keep
        // the drop pattern identical across the two configs.
        let plain = WireChaos::new(&ChaosConfig {
            drop: 0.2,
            ..ChaosConfig::default()
        });
        let dirty = WireChaos::new(&ChaosConfig {
            drop: 0.2,
            dup: 0.1,
            corrupt: 0.1,
            ..ChaosConfig::default()
        });
        let fates_a: Vec<bool> = (0..500).map(|_| plain.fate() == FrameFate::Drop).collect();
        let fates_b: Vec<bool> = (0..500).map(|_| dirty.fate() == FrameFate::Drop).collect();
        assert_eq!(fates_a, fates_b);
    }

    #[test]
    fn fate_frequencies_match_config() {
        let wire = WireChaos::new(&ChaosConfig {
            drop: 0.3,
            dup: 0.2,
            corrupt: 0.2,
            ..ChaosConfig::default()
        });
        let n = 10_000;
        for _ in 0..n {
            wire.fate();
        }
        let drop_rate = wire.dropped() as f64 / n as f64;
        let dup_rate = wire.dupped() as f64 / n as f64;
        let corrupt_rate = wire.corrupted() as f64 / n as f64;
        // Per-class streams with drop > dup > corrupt priority: the
        // marginal rates compound.
        assert!((drop_rate - 0.3).abs() < 0.03, "drop rate {drop_rate}");
        assert!((dup_rate - 0.7 * 0.2).abs() < 0.03, "dup rate {dup_rate}");
        assert!(
            (corrupt_rate - 0.7 * 0.8 * 0.2).abs() < 0.03,
            "corrupt rate {corrupt_rate}"
        );
    }

    #[test]
    fn cut_follows_links_and_partitions() {
        let wire = WireChaos::new(&ChaosConfig::parse("link:1>0").unwrap());
        assert!(wire.cut(1, 0));
        assert!(!wire.cut(0, 1), "link faults are directed");
        assert!(!wire.cut(1, 2));
        wire.set_link(None);
        assert!(!wire.cut(1, 0), "healed");

        let wire = WireChaos::new(&ChaosConfig::parse("part:0|1,2").unwrap());
        assert!(wire.cut(0, 1) && wire.cut(1, 0), "partitions are symmetric");
        assert!(wire.cut(0, 2) && wire.cut(2, 0));
        assert!(!wire.cut(1, 2), "same side stays connected");
        assert!(!wire.cut(0, 0));
        assert!(!wire.cut(3, 0), "nodes outside both groups are unaffected");
        wire.set_partition(None);
        assert!(!wire.cut(0, 1), "healed");
    }

    #[test]
    fn cut_edges_eat_every_fate() {
        let wire = WireChaos::new(&ChaosConfig::parse("part:0|1").unwrap());
        for _ in 0..50 {
            assert_eq!(wire.fate_for(0, 1, 0), FrameFate::Drop);
            assert!(wire.ack_fate_for(1, 0));
        }
        assert_eq!(wire.cut_frames(), 100);
        assert_eq!(wire.dropped(), 0, "cuts are not probabilistic drops");
        assert_eq!(wire.fate_for(1, 2, 0), FrameFate::Deliver);
    }

    #[test]
    fn degraded_lane_sheds_frames_until_healed() {
        let wire = WireChaos::new(&ChaosConfig::default());
        wire.degrade_lane(1, 1.0);
        assert_eq!(wire.fate_for(0, 1, 1), FrameFate::Drop);
        assert_eq!(
            wire.fate_for(0, 1, 0),
            FrameFate::Deliver,
            "other lanes unaffected"
        );
        wire.heal_lanes();
        assert_eq!(wire.fate_for(0, 1, 1), FrameFate::Deliver);
        assert_eq!(wire.lane_dropped(), 1);
    }

    #[test]
    fn corrupt_bytes_spares_the_header_prefix() {
        let wire = WireChaos::new(&ChaosConfig {
            corrupt: 0.5,
            ..ChaosConfig::default()
        });
        let lo = crate::wire::HEADER_LEN - 4;
        for len in [crate::wire::HEADER_LEN, crate::wire::HEADER_LEN + 64] {
            let clean = vec![0u8; len];
            for _ in 0..100 {
                let mut buf = clean.clone();
                wire.corrupt_bytes(&mut buf);
                assert_eq!(&buf[..lo], &clean[..lo], "header prefix untouched");
                assert_ne!(&buf[lo..], &clean[lo..], "something flipped");
            }
        }
    }

    #[test]
    fn inproc_declines_wire_faults_but_still_delivers() {
        let f = ChaosFabric::new(
            InProcFabric::new(),
            ChaosConfig::parse("drop:0.5,dup:0.3,corrupt:0.1,delay:1ms").unwrap(),
        );
        assert!(!f.wired(), "inproc has no wire to corrupt");
        // Frame faults are skipped entirely: nothing may be lost.
        for i in 0..20u8 {
            f.send((0, 1, 0), vec![i]).unwrap();
        }
        for i in 0..20u8 {
            assert_eq!(f.recv((0, 1, 0)).unwrap(), vec![i]);
        }
    }
}
