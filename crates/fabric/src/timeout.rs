//! The runtime-wide blocking-wait timeout, parsed in exactly one place.
//!
//! Every blocking primitive in the system — the runtime's address-board
//! fetches and flag waits, and the fabric's receives and backpressure
//! stalls — bounds its wait with this value so an under-synchronized
//! schedule fails in seconds with a diagnostic instead of hanging CI.

use std::sync::OnceLock;
use std::time::Duration;

/// How long a blocking primitive waits before giving up with a
/// diagnostic. Defaults to 10 s; override with `PIPMCOLL_SYNC_TIMEOUT_MS`.
///
/// A malformed value falls back to the default here: the loud path is
/// [`crate::env::validate`], run at fabric construction, which rejects a
/// bad `PIPMCOLL_SYNC_TIMEOUT_MS` with a typed [`crate::env::EnvError`]
/// before any worker thread can read this cache.
pub fn sync_timeout() -> Duration {
    static MS: OnceLock<u64> = OnceLock::new();
    let ms = *MS.get_or_init(|| crate::env::read_u64_or("PIPMCOLL_SYNC_TIMEOUT_MS", 10_000));
    Duration::from_millis(ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ten_seconds() {
        // The test environment does not set the variable; the cached
        // default must be the documented 10 s.
        assert_eq!(sync_timeout(), Duration::from_millis(10_000));
    }
}
