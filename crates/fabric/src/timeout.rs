//! The runtime-wide blocking-wait timeout, parsed in exactly one place.
//!
//! Every blocking primitive in the system — the runtime's address-board
//! fetches and flag waits, and the fabric's receives and backpressure
//! stalls — bounds its wait with this value so an under-synchronized
//! schedule fails in seconds with a diagnostic instead of hanging CI.

use std::sync::OnceLock;
use std::time::Duration;

/// How long a blocking primitive waits before panicking with a
/// diagnostic. Defaults to 10 s; override with `PIPMCOLL_SYNC_TIMEOUT_MS`.
///
/// # Panics
/// Panics on a malformed `PIPMCOLL_SYNC_TIMEOUT_MS` value — a typo in the
/// timeout must fail loudly, not silently run with the default.
pub fn sync_timeout() -> Duration {
    static MS: OnceLock<u64> = OnceLock::new();
    let ms = *MS.get_or_init(|| match std::env::var("PIPMCOLL_SYNC_TIMEOUT_MS") {
        Err(std::env::VarError::NotPresent) => 10_000,
        Err(std::env::VarError::NotUnicode(v)) => {
            panic!("PIPMCOLL_SYNC_TIMEOUT_MS is not valid unicode: {v:?}")
        }
        Ok(v) => v.trim().parse().unwrap_or_else(|_| {
            panic!("PIPMCOLL_SYNC_TIMEOUT_MS must be a whole number of milliseconds, got {v:?}")
        }),
    });
    Duration::from_millis(ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_ten_seconds() {
        // The test environment does not set the variable; the cached
        // default must be the documented 10 s.
        assert_eq!(sync_timeout(), Duration::from_millis(10_000));
    }
}
