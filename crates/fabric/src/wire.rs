//! The TCP backend's wire protocol: length-prefixed frames with an
//! eager/rendezvous split, framed for *dirty* transports — every frame
//! opens with a magic byte and a format version, and closes its header
//! with a CRC-32C checksum covering header and payload.
//!
//! Every frame starts with a fixed 47-byte little-endian header:
//!
//! ```text
//! offset  size  field
//!      0     1  magic       0xB7 (stream-desync sentinel)
//!      1     1  version     wire-format version (currently 1)
//!      2     1  kind        (1=EAGER, 2=RTS, 3=CTS, 4=DATA, 5=ACK, 6=HEARTBEAT)
//!      3     4  src rank
//!      7     4  dst rank
//!     11     4  tag
//!     15     8  seq         per-channel sequence (EAGER/RTS/DATA/ACK)
//!     23     8  aux         rendezvous transfer id (RTS/CTS/DATA)
//!     31     2  seg_idx     segment index within a striped message
//!     33     2  seg_count   total segments (0 or 1 = unsegmented)
//!     35     8  payload len
//!     43     4  CRC-32C     over bytes [0..43) ++ payload
//!     47     …  payload     (EAGER and DATA only)
//! ```
//!
//! The PR 9 header silently grew 37→41 bytes with nothing a peer could
//! use to notice: a mixed-build pair would misparse every frame as
//! garbage. The magic byte distinguishes "this is not our protocol at
//! all / the stream desynced" from "this *is* our protocol, but a
//! different format version" — the latter surfaces as a typed
//! [`WireError::Version`] carrying both version bytes, which the TCP
//! backend converts into `MalformedFrame { expected_version, got }`.
//!
//! **Integrity.** The trailing CRC-32C (Castagnoli polynomial; the x86
//! `crc32` instruction when the CPU has SSE4.2, a slicing-by-8 table
//! fallback otherwise — std-only either way, and large payloads use a
//! tri-stream digest, see [`frame_crc`]) covers the header prefix and
//! the payload. Receivers
//! verify it *before* trusting any field: a checksum mismatch makes the
//! whole frame untrustworthy, so the decoder consumes and discards it
//! exactly as if the wire had eaten it ([`FrameDecoder::take_corrupt`]
//! counts these). The PR 3/4 cumulative-ack + retransmit machinery then
//! recovers the clean copy with **zero new protocol states** — a
//! corrupted frame is just a lost frame with a forensic trail. A flip
//! that lands in the length field can desync the stream: the CRC over
//! the mis-extended frame fails (drop), and the next decode attempt
//! trips the magic check ([`WireError::BadMagic`]) — the byte stream
//! cannot be resynced, so the backend reconnects and retransmit
//! recovers, the same path a torn socket takes. Lengths above
//! [`MAX_PAYLOAD`] are rejected outright ([`WireError::Oversize`])
//! rather than stalling the decoder waiting for bytes that will never
//! come.
//!
//! Small messages travel as a single `EAGER` frame. Above the eager
//! threshold the sender stashes the payload and sends `RTS`; the receiver
//! answers `CTS` on the same lane's reverse direction; the sender then
//! ships the payload in a `DATA` frame. Because a later eager message can
//! physically arrive before an earlier rendezvous payload, every
//! payload-bearing frame carries its channel sequence number and the
//! receive side reassembles send order (see `store::MsgStore`).
//!
//! `ACK` closes the loss-recovery loop, and acks are **cumulative**: an
//! `ACK` frame's `seq` is the receiver's next-expected sequence for the
//! channel, acknowledging *everything below it* at once. The sender
//! keeps unacked frames in a per-channel pending queue, retransmitting
//! with exponential backoff until the watermark passes them or the
//! retransmit budget runs out. Receivers batch: instead of one control
//! reply per frame, they flush one `ACK` per dirty channel when the
//! inbound socket goes quiet (or every 32 frames under sustained load),
//! and an ack owed on a channel's reverse direction piggybacks in the
//! otherwise-unused `aux` field of the next outgoing `EAGER` frame
//! (`aux = watermark + 1`; 0 means none, since watermark 0 carries no
//! information). The sequence dedup in `store::MsgStore` makes
//! retransmits idempotent, and any later delivery on the channel
//! re-raises the watermark — so a lost ack costs one duplicate frame,
//! never a duplicate message, and never a stuck sender.
//!
//! Under the stripe lane policy (`tcp::LanePolicy::Stripe`) one large
//! message is split into up to k segments, each an ordinary sequenced
//! frame on its own lane. `seg_idx`/`seg_count` tell the receive side
//! how to reassemble: segments of one message occupy *consecutive*
//! channel sequence numbers, so the existing hold-back/dedup machinery
//! orders and de-duplicates them for free, and `store::MsgStore` glues
//! `seg_count` consecutive deliveries back into one message before FIFO
//! release. `seg_count` 0 or 1 means the frame carries a whole message.

use std::fmt;
use std::io::{self, Read};

/// First byte of every frame. Chosen to be unlikely in ASCII traffic
/// and asymmetric under bit reversal, so a desynced stream trips the
/// check almost immediately.
pub const MAGIC: u8 = 0xB7;

/// The wire-format version this build speaks. Bump on any layout
/// change; a peer speaking another version is typed, not garbage.
pub const WIRE_VERSION: u8 = 1;

/// Size of the fixed frame header in bytes (magic + version + fields +
/// CRC-32C).
pub const HEADER_LEN: usize = 47;

/// Byte offset of the header's CRC-32C field; the checksum covers
/// `[0..CRC_OFFSET)` plus the payload.
const CRC_OFFSET: usize = HEADER_LEN - 4;

/// Largest payload a frame may declare (1 GiB). A corrupted length
/// field must not leave the decoder waiting forever for bytes that
/// will never arrive.
pub const MAX_PAYLOAD: u64 = 1 << 30;

// ---------------------------------------------------------------------
// CRC-32C (Castagnoli), slicing-by-8, std-only.
//
// A plain 256-entry table CRC is a serial chain: every byte's lookup
// waits on the previous one (~4-5 cycle table-load latency each), and
// on the eager hot path that tax is measurable — switching from
// byte-at-a-time to slicing-by-8 recovered most of a ~30% 64B
// message-rate hit on the fabric sweep. Slicing-by-8 folds 8 input
// bytes per step through 8 independent tables (const-built at compile
// time, 8 KiB total) whose lookups can issue in parallel; only the
// final XOR reduction is serial.
// ---------------------------------------------------------------------

/// Reflected Castagnoli polynomial (0x1EDC6F41 bit-reversed).
const CRC32C_POLY: u32 = 0x82F6_3B78;

const fn crc32c_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                CRC32C_POLY ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    // Table k advances a byte's contribution k extra positions:
    // t[k][i] = one more table-0 step applied to t[k-1][i].
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        k += 1;
    }
    t
}

static CRC32C_TABLES: [[u32; 256]; 8] = crc32c_tables();

/// Feed bytes through the CRC register (no init/finalize — composable
/// over disjoint slices, which is how the encoder checksums header and
/// payload without concatenating them). Dispatches to the x86 `crc32`
/// instruction when available — the SSE4.2 instruction implements
/// exactly this reflected Castagnoli update at ~1 byte/cycle×8, which
/// keeps the checksum off the bandwidth critical path for large
/// frames (the table fallback alone more than halved 128 KiB
/// throughput on the fabric sweep).
fn crc32c_feed(crc: u32, data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // SAFETY: the sse4.2 check above proves the `crc32`
        // instructions used inside are supported on this CPU.
        return unsafe { crc32c_feed_hw(crc, data) };
    }
    crc32c_feed_sw(crc, data)
}

/// Hardware CRC-32C: the SSE4.2 `crc32` instruction family, 8 bytes
/// per issue. Same register convention as the table path (no
/// init/finalize), proven equivalent by `hw_and_sw_crc_agree`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32c_feed_hw(crc: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut chunks = data.chunks_exact(8);
    let mut c = crc as u64;
    for ch in &mut chunks {
        let word = u64::from_le_bytes(ch.try_into().expect("8-byte chunk"));
        c = _mm_crc32_u64(c, word);
    }
    let mut c = c as u32;
    for &b in chunks.remainder() {
        c = _mm_crc32_u8(c, b);
    }
    c
}

/// Software fallback: slicing-by-8 over the const tables.
fn crc32c_feed_sw(mut crc: u32, data: &[u8]) -> u32 {
    let t = &CRC32C_TABLES;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ crc;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// CRC-32C of one contiguous slice (init `!0`, final complement —
/// the standard Castagnoli convention: `crc32c(b"123456789") ==
/// 0xE3069283`).
pub fn crc32c(data: &[u8]) -> u32 {
    !crc32c_feed(!0, data)
}

/// Payloads at or above this length use the tri-stream digest in
/// [`frame_crc`]; below it, the plain contiguous CRC (one cheap pass,
/// and the interleave setup would not pay for itself).
const CRC_TRI_MIN: usize = 4096;

/// The frame checksum. For small payloads: CRC-32C over the header
/// prefix then the payload as one logical byte string. For payloads ≥
/// [`CRC_TRI_MIN`]: the payload is split into three near-equal thirds
/// whose CRCs are computed as three *interleaved* dependency chains,
/// and the digest is the CRC of the header prefix, the payload length,
/// and the three third-CRCs.
///
/// The split exists because one CRC stream is latency-bound: both the
/// hardware `crc32` instruction (3-cycle latency, 1/cycle throughput)
/// and a table lookup chain serialize on the previous result, capping
/// a single stream near 2.7 bytes/cycle. Three independent chains in
/// one loop pipeline to ~8 bytes/cycle — on the fabric sweep this was
/// the difference between a ~23% and a single-digit 128 KiB bandwidth
/// tax. A standard-CRC-preserving version of this trick needs a GF(2)
/// `crc32_combine` per frame, which costs more than it saves at these
/// sizes; since this checksum only ever has to agree between our own
/// encoder and decoder, folding the three digests is enough. Error
/// detection is not weakened: each third is covered by a full CRC-32C
/// (any burst ≤ 32 bits within a third is caught), and a change in any
/// third-CRC changes the outer digest.
fn frame_crc(header_prefix: &[u8], payload: &[u8]) -> u32 {
    if payload.len() < CRC_TRI_MIN {
        return !crc32c_feed(crc32c_feed(!0, header_prefix), payload);
    }
    let third = (payload.len() / 3) & !7;
    let (a, rest) = payload.split_at(third);
    let (b, c) = rest.split_at(third);
    let (ca, cb, cc) = crc32c_tri(a, b, c);
    let mut tail = [0u8; 20];
    tail[..8].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    tail[8..12].copy_from_slice(&ca.to_le_bytes());
    tail[12..16].copy_from_slice(&cb.to_le_bytes());
    tail[16..].copy_from_slice(&cc.to_le_bytes());
    !crc32c_feed(crc32c_feed(!0, header_prefix), &tail)
}

/// CRC-32C of three slices, computed as three interleaved chains. `a`
/// and `b` have equal multiple-of-8 lengths; `c` may be longer (it
/// absorbs the split remainder — its overhang past `a.len()` is fed
/// single-stream).
fn crc32c_tri(a: &[u8], b: &[u8], c: &[u8]) -> (u32, u32, u32) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // SAFETY: the sse4.2 check above proves the `crc32`
        // instructions used inside are supported on this CPU.
        return unsafe { crc32c_tri_hw(a, b, c) };
    }
    (crc32c(a), crc32c(b), crc32c(c))
}

/// Three pipelined `crc32` chains in one loop — the instruction has
/// single-cycle throughput, so independent chains hide each other's
/// latency. Equivalence with the contiguous implementation is proven
/// by `tri_stream_matches_plain_crcs`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32c_tri_hw(a: &[u8], b: &[u8], c: &[u8]) -> (u32, u32, u32) {
    use std::arch::x86_64::_mm_crc32_u64;
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len() % 8, 0);
    debug_assert!(c.len() >= a.len());
    let word =
        |s: &[u8], i: usize| u64::from_le_bytes(s[i..i + 8].try_into().expect("8-byte window"));
    let (mut ca, mut cb, mut cc) = (!0u64, !0u64, !0u64);
    let mut i = 0;
    while i < a.len() {
        ca = _mm_crc32_u64(ca, word(a, i));
        cb = _mm_crc32_u64(cb, word(b, i));
        cc = _mm_crc32_u64(cc, word(c, i));
        i += 8;
    }
    // c's overhang: up to 7 bytes of split remainder plus its extra
    // length beyond the rounded third.
    let cc = crc32c_feed_hw(cc as u32, &c[a.len()..]);
    (!(ca as u32), !(cb as u32), !cc)
}

// ---------------------------------------------------------------------
// Typed decode failures.
// ---------------------------------------------------------------------

/// Why a byte stream could not be decoded into frames. All variants are
/// *stream* errors — the connection cannot be resynced and must
/// reconnect. (A checksum mismatch is deliberately **not** here: the
/// frame boundary is still trustworthy, so the decoder drops the frame
/// and keeps going; see [`FrameDecoder::take_corrupt`].)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The next byte is not [`MAGIC`]: not our protocol, or the stream
    /// desynced (e.g. after a corrupted length field).
    BadMagic {
        /// The byte found where the magic belonged.
        got: u8,
    },
    /// Right magic, wrong format version — a mixed-build peer.
    Version {
        /// The version this build speaks ([`WIRE_VERSION`]).
        expected: u8,
        /// The version the frame declared.
        got: u8,
    },
    /// A checksum-valid frame with an unknown kind discriminator —
    /// a same-version peer we fundamentally disagree with.
    BadKind {
        /// The unknown kind byte.
        got: u8,
    },
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversize {
        /// The declared length.
        len: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic { got } => {
                write!(f, "bad magic byte {got:#04x} (expected {MAGIC:#04x})")
            }
            WireError::Version { expected, got } => {
                write!(
                    f,
                    "wire-format version {got} (this build speaks {expected})"
                )
            }
            WireError::BadKind { got } => write!(f, "unknown frame kind byte {got}"),
            WireError::Oversize { len } => {
                write!(f, "declared payload length {len} exceeds {MAX_PAYLOAD}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Frame discriminator (third header byte).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Payload inline; the whole message in one frame.
    Eager = 1,
    /// Rendezvous request-to-send: announces `seq` under transfer `aux`.
    Rts = 2,
    /// Rendezvous clear-to-send: receiver grants transfer `aux`.
    Cts = 3,
    /// Rendezvous payload for transfer `aux`.
    Data = 4,
    /// Cumulative acknowledgement: `seq` is the receiver's
    /// next-expected sequence on this channel; the sender drops every
    /// pending frame below it from its retransmit queue.
    Ack = 5,
    /// Liveness beacon for the node pair. Carries no channel state —
    /// src/dst are representative ranks of the two nodes, seq/aux are
    /// zero. Any frame arrival proves the peer alive; heartbeats exist
    /// only so a *quiet* pair still proves it (see `tcp` heartbeat
    /// sideband). Never acked, never retransmitted, never sequenced.
    Heartbeat = 6,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        match v {
            1 => Some(FrameKind::Eager),
            2 => Some(FrameKind::Rts),
            3 => Some(FrameKind::Cts),
            4 => Some(FrameKind::Data),
            5 => Some(FrameKind::Ack),
            6 => Some(FrameKind::Heartbeat),
            _ => None,
        }
    }
}

/// One wire frame (header fields plus owned payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Frame discriminator.
    pub kind: FrameKind,
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Message tag.
    pub tag: u32,
    /// Per-channel sequence number (EAGER/RTS/DATA), or the cumulative
    /// next-expected watermark (ACK).
    pub seq: u64,
    /// Rendezvous transfer id (RTS/CTS/DATA), or a piggybacked
    /// cumulative ack for the reverse channel (EAGER): `watermark + 1`,
    /// with 0 meaning no ack aboard.
    pub aux: u64,
    /// Segment index within a striped message (EAGER/DATA under the
    /// stripe lane policy); 0 otherwise.
    pub seg_idx: u16,
    /// Total segments of the striped message this frame belongs to.
    /// 0 or 1 means the frame carries a whole, unsegmented message.
    pub seg_count: u16,
    /// Inline payload (EAGER/DATA; empty otherwise).
    pub payload: Vec<u8>,
}

/// What [`Frame::decode_prefix`] found at the front of the buffer.
enum Prefix {
    /// Not enough bytes for a verdict yet.
    Need,
    /// A complete frame whose checksum failed: its `usize` bytes must be
    /// consumed and its contents must not be trusted.
    Corrupt(usize),
    /// A complete, checksum-valid frame and its encoded length.
    Ok(Frame, usize),
}

impl Frame {
    /// Encode the frame as header + payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        self.encode_into(&mut out);
        out
    }

    /// Encode into `out`, replacing its contents. Reuses `out`'s
    /// existing capacity — this is how pooled frame buffers avoid a
    /// fresh allocation per message (see `pool::FramePool::encode`).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        self.encode_into_with(out, &self.payload);
    }

    /// [`Frame::encode_into`] with the payload supplied as a slice,
    /// ignoring `self.payload`. This is how the stripe send path encodes
    /// each segment straight from a sub-slice of the caller's message —
    /// one header per segment, zero intermediate payload copies. The
    /// single encode choke point: every frame that reaches a wire is
    /// checksummed here.
    pub fn encode_into_with(&self, out: &mut Vec<u8>, payload: &[u8]) {
        out.clear();
        out.reserve(HEADER_LEN + payload.len());
        out.push(MAGIC);
        out.push(WIRE_VERSION);
        out.push(self.kind as u8);
        out.extend_from_slice(&self.src.to_le_bytes());
        out.extend_from_slice(&self.dst.to_le_bytes());
        out.extend_from_slice(&self.tag.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.aux.to_le_bytes());
        out.extend_from_slice(&self.seg_idx.to_le_bytes());
        out.extend_from_slice(&self.seg_count.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let crc = frame_crc(&out[..CRC_OFFSET], payload);
        out.extend_from_slice(&crc.to_le_bytes());
        out.extend_from_slice(payload);
    }

    /// Read one frame from `r` (blocking). `Err` on EOF or any framing
    /// problem — including a checksum mismatch, which in this blocking
    /// one-shot API has no retransmit path behind it and is therefore
    /// an error rather than a silent drop.
    pub fn read_from(r: &mut impl Read) -> io::Result<Frame> {
        let mut h = [0u8; HEADER_LEN];
        r.read_exact(&mut h)?;
        if h[0] != MAGIC {
            return Err(WireError::BadMagic { got: h[0] }.into());
        }
        if h[1] != WIRE_VERSION {
            return Err(WireError::Version {
                expected: WIRE_VERSION,
                got: h[1],
            }
            .into());
        }
        let len = u64::from_le_bytes(h[35..43].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversize { len }.into());
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        let want = u32::from_le_bytes(h[43..47].try_into().unwrap());
        if frame_crc(&h[..CRC_OFFSET], &payload) != want {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame checksum mismatch",
            ));
        }
        let kind =
            FrameKind::from_u8(h[2]).ok_or(io::Error::from(WireError::BadKind { got: h[2] }))?;
        Ok(Frame {
            kind,
            src: u32::from_le_bytes(h[3..7].try_into().unwrap()),
            dst: u32::from_le_bytes(h[7..11].try_into().unwrap()),
            tag: u32::from_le_bytes(h[11..15].try_into().unwrap()),
            seq: u64::from_le_bytes(h[15..23].try_into().unwrap()),
            aux: u64::from_le_bytes(h[23..31].try_into().unwrap()),
            seg_idx: u16::from_le_bytes(h[31..33].try_into().unwrap()),
            seg_count: u16::from_le_bytes(h[33..35].try_into().unwrap()),
            payload,
        })
    }

    /// The channel this frame belongs to.
    pub fn chan(&self) -> crate::ChanKey {
        (self.src as usize, self.dst as usize, self.tag)
    }

    /// Peek a payload frame's identity (channel + sequence) straight
    /// from its encoded header, without touching the payload. `None`
    /// for control kinds — the kinds the retransmit table never holds.
    pub fn peek_payload_id(bytes: &[u8]) -> Option<(crate::ChanKey, u64)> {
        if bytes.len() < HEADER_LEN || bytes[0] != MAGIC || bytes[1] != WIRE_VERSION {
            return None;
        }
        match FrameKind::from_u8(bytes[2]) {
            Some(FrameKind::Eager | FrameKind::Data) => {}
            _ => return None,
        }
        let src = u32::from_le_bytes(bytes[3..7].try_into().unwrap()) as usize;
        let dst = u32::from_le_bytes(bytes[7..11].try_into().unwrap()) as usize;
        let tag = u32::from_le_bytes(bytes[11..15].try_into().unwrap());
        let seq = u64::from_le_bytes(bytes[15..23].try_into().unwrap());
        Some(((src, dst, tag), seq))
    }

    /// Decode one frame from the front of `bytes`. Magic and version
    /// are checked first (they gate whether the length field means
    /// anything); the checksum is verified over the complete frame
    /// *before any field is trusted*, so a corrupted frame — wherever
    /// the flip landed — comes back as [`Prefix::Corrupt`], not as a
    /// frame with plausible-looking garbage in it.
    fn decode_prefix(bytes: &[u8]) -> Result<Prefix, WireError> {
        if bytes.len() < HEADER_LEN {
            return Ok(Prefix::Need);
        }
        if bytes[0] != MAGIC {
            return Err(WireError::BadMagic { got: bytes[0] });
        }
        if bytes[1] != WIRE_VERSION {
            return Err(WireError::Version {
                expected: WIRE_VERSION,
                got: bytes[1],
            });
        }
        let len = u64::from_le_bytes(bytes[35..43].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversize { len });
        }
        let total = HEADER_LEN + len as usize;
        if bytes.len() < total {
            return Ok(Prefix::Need);
        }
        let want = u32::from_le_bytes(bytes[43..47].try_into().unwrap());
        if frame_crc(&bytes[..CRC_OFFSET], &bytes[HEADER_LEN..total]) != want {
            return Ok(Prefix::Corrupt(total));
        }
        let Some(kind) = FrameKind::from_u8(bytes[2]) else {
            return Err(WireError::BadKind { got: bytes[2] });
        };
        Ok(Prefix::Ok(
            Frame {
                kind,
                src: u32::from_le_bytes(bytes[3..7].try_into().unwrap()),
                dst: u32::from_le_bytes(bytes[7..11].try_into().unwrap()),
                tag: u32::from_le_bytes(bytes[11..15].try_into().unwrap()),
                seq: u64::from_le_bytes(bytes[15..23].try_into().unwrap()),
                aux: u64::from_le_bytes(bytes[23..31].try_into().unwrap()),
                seg_idx: u16::from_le_bytes(bytes[31..33].try_into().unwrap()),
                seg_count: u16::from_le_bytes(bytes[33..35].try_into().unwrap()),
                payload: bytes[HEADER_LEN..total].to_vec(),
            },
            total,
        ))
    }
}

/// Incremental frame decoder for nonblocking sockets: feed it whatever
/// byte chunks the kernel hands back, pull out as many complete frames
/// as have accumulated. A frame split across reads simply waits in the
/// buffer until its tail arrives — the nonblocking analogue of
/// [`Frame::read_from`]'s blocking `read_exact` pair.
///
/// Checksum-failed frames are consumed and *silently skipped* — the
/// wire ate them, as far as the protocol is concerned, and retransmit
/// recovers the clean copy. They are tallied; the backend drains the
/// tally into its `corrupt_frames` statistic via
/// [`FrameDecoder::take_corrupt`].
///
/// The internal buffer is reused across frames (consumed bytes are
/// compacted away lazily), so a steady stream of small frames settles
/// into zero decoder-side allocations apart from the per-frame payload
/// vector the receiver keeps anyway.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already decoded and awaiting compaction.
    pos: usize,
    /// Checksum-failed frames consumed since the last
    /// [`FrameDecoder::take_corrupt`].
    corrupt: u64,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append freshly read bytes to the undecoded tail.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: reclaiming the consumed prefix keeps
        // the buffer from creeping up under a long-lived connection.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decode the next complete, checksum-valid frame, if one has fully
    /// arrived. Checksum-failed frames are consumed, counted, and
    /// skipped without surfacing here. `Ok(None)` means "need more
    /// bytes"; `Err` means the stream is garbled beyond recovery
    /// (reconnect, don't resync) — wrong magic, wrong format version,
    /// unknown kind, or an insane length.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        loop {
            match Frame::decode_prefix(&self.buf[self.pos..])? {
                Prefix::Ok(frame, used) => {
                    self.pos += used;
                    return Ok(Some(frame));
                }
                Prefix::Corrupt(used) => {
                    self.pos += used;
                    self.corrupt += 1;
                }
                Prefix::Need => return Ok(None),
            }
        }
    }

    /// Drain the count of checksum-failed frames consumed since the
    /// last call.
    pub fn take_corrupt(&mut self) -> u64 {
        std::mem::take(&mut self.corrupt)
    }

    /// Bytes buffered but not yet decoded into a frame (a partial frame
    /// in flight).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_known_answer() {
        // The standard Castagnoli check value.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn tri_stream_matches_plain_crcs() {
        // The interleaved kernel must produce exactly the contiguous
        // CRC of each third — including c's overhang tail — across
        // lengths around the tri threshold and odd remainders.
        for len in [CRC_TRI_MIN, CRC_TRI_MIN + 1, 3 * 4096, 100_003] {
            let data: Vec<u8> = (0..len as u32).map(|i| (i * 131 + 3) as u8).collect();
            let third = (len / 3) & !7;
            let (a, rest) = data.split_at(third);
            let (b, c) = rest.split_at(third);
            assert_eq!(
                crc32c_tri(a, b, c),
                (crc32c(a), crc32c(b), crc32c(c)),
                "len {len}"
            );
        }
    }

    #[test]
    fn tri_digest_detects_corruption_in_every_third() {
        let header = [7u8; CRC_OFFSET];
        let payload: Vec<u8> = (0..3 * 4096u32).map(|i| (i * 13) as u8).collect();
        let clean = frame_crc(&header, &payload);
        for pos in [0, payload.len() / 2, payload.len() - 1] {
            let mut bad = payload.clone();
            bad[pos] ^= 0x40;
            assert_ne!(frame_crc(&header, &bad), clean, "flip at {pos} undetected");
        }
    }

    #[test]
    fn hw_and_sw_crc_agree() {
        // Every length 0..=64 plus a large buffer, so both the 8-byte
        // main loop and every remainder length are exercised against
        // the table implementation.
        let data: Vec<u8> = (0..4096u32).map(|i| (i * 31 + 7) as u8).collect();
        for len in (0..=64).chain([1000, 4096]) {
            let sw = !crc32c_feed_sw(!0, &data[..len]);
            let via_dispatch = crc32c(&data[..len]);
            assert_eq!(sw, via_dispatch, "mismatch at len {len}");
        }
    }

    #[test]
    fn crc_composes_over_split_slices() {
        let whole = crc32c(b"header+payload");
        let split = !crc32c_feed(crc32c_feed(!0, b"header+"), b"payload");
        assert_eq!(whole, split);
    }

    #[test]
    fn roundtrip_all_kinds() {
        for (kind, payload) in [
            (FrameKind::Eager, vec![1u8, 2, 3]),
            (FrameKind::Rts, vec![]),
            (FrameKind::Cts, vec![]),
            (FrameKind::Data, vec![0u8; 1000]),
            (FrameKind::Ack, vec![]),
            (FrameKind::Heartbeat, vec![]),
        ] {
            let f = Frame {
                kind,
                src: 3,
                dst: 11,
                tag: 42,
                seq: 9,
                aux: 77,
                seg_idx: 2,
                seg_count: 5,
                payload,
            };
            let bytes = f.encode();
            assert_eq!(bytes.len(), HEADER_LEN + f.payload.len());
            assert_eq!(bytes[0], MAGIC);
            assert_eq!(bytes[1], WIRE_VERSION);
            let mut cursor = &bytes[..];
            let back = Frame::read_from(&mut cursor).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn zero_length_payload_roundtrips() {
        let f = Frame {
            kind: FrameKind::Eager,
            src: 0,
            dst: 1,
            tag: 0,
            seq: 0,
            aux: 0,
            seg_idx: 0,
            seg_count: 0,
            payload: vec![],
        };
        let mut cursor = &f.encode()[..];
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), f);
    }

    #[test]
    fn encode_into_replaces_dirty_contents() {
        let f = Frame {
            kind: FrameKind::Eager,
            src: 1,
            dst: 2,
            tag: 3,
            seq: 4,
            aux: 5,
            seg_idx: 1,
            seg_count: 2,
            payload: vec![6, 7],
        };
        let mut buf = vec![0xFFu8; 500];
        f.encode_into(&mut buf);
        assert_eq!(buf, f.encode());
    }

    #[test]
    fn segment_fields_sit_at_their_documented_offsets() {
        let f = Frame {
            kind: FrameKind::Data,
            src: 1,
            dst: 2,
            tag: 3,
            seq: 10,
            aux: 4,
            seg_idx: 3,
            seg_count: 7,
            payload: vec![0xAA; 5],
        };
        let bytes = f.encode();
        assert_eq!(u16::from_le_bytes(bytes[31..33].try_into().unwrap()), 3);
        assert_eq!(u16::from_le_bytes(bytes[33..35].try_into().unwrap()), 7);
        assert_eq!(u64::from_le_bytes(bytes[35..43].try_into().unwrap()), 5);
        let back = Frame::read_from(&mut &bytes[..]).unwrap();
        assert_eq!((back.seg_idx, back.seg_count), (3, 7));
    }

    #[test]
    fn checksum_sits_at_its_documented_offset_and_covers_the_payload() {
        let f = Frame {
            kind: FrameKind::Eager,
            src: 1,
            dst: 2,
            tag: 3,
            seq: 4,
            aux: 5,
            seg_idx: 0,
            seg_count: 0,
            payload: vec![0x55; 16],
        };
        let bytes = f.encode();
        let stored = u32::from_le_bytes(bytes[43..47].try_into().unwrap());
        let mut covered = bytes[..CRC_OFFSET].to_vec();
        covered.extend_from_slice(&bytes[HEADER_LEN..]);
        assert_eq!(stored, crc32c(&covered));
    }

    #[test]
    fn encode_into_with_substitutes_the_payload() {
        let f = Frame {
            kind: FrameKind::Eager,
            src: 1,
            dst: 2,
            tag: 3,
            seq: 4,
            aux: 0,
            seg_idx: 1,
            seg_count: 4,
            payload: vec![],
        };
        let mut out = Vec::new();
        f.encode_into_with(&mut out, &[9, 8, 7]);
        let mut whole = f.clone();
        whole.payload = vec![9, 8, 7];
        assert_eq!(out, whole.encode(), "slice payload encodes identically");
    }

    #[test]
    fn decoder_reassembles_frames_split_across_reads() {
        let frames: Vec<Frame> = (0..5u8)
            .map(|i| Frame {
                kind: FrameKind::Eager,
                src: i as u32,
                dst: 1,
                tag: 2,
                seq: i as u64,
                aux: 0,
                seg_idx: 0,
                seg_count: 0,
                payload: vec![i; 10 + i as usize * 7],
            })
            .collect();
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        // Feed in ragged chunks that never align with frame boundaries.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(13) {
            dec.feed(chunk);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(dec.pending_bytes(), 0);
        assert_eq!(dec.take_corrupt(), 0);
    }

    #[test]
    fn decoder_surfaces_bad_magic_as_desync() {
        let mut bytes = Frame {
            kind: FrameKind::Eager,
            src: 0,
            dst: 0,
            tag: 0,
            seq: 0,
            aux: 0,
            seg_idx: 0,
            seg_count: 0,
            payload: vec![1, 2],
        }
        .encode();
        bytes[0] = 0xFF;
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert_eq!(
            dec.next_frame().unwrap_err(),
            WireError::BadMagic { got: 0xFF }
        );
    }

    #[test]
    fn decoder_types_a_version_mismatch() {
        let mut bytes = Frame {
            kind: FrameKind::Eager,
            src: 0,
            dst: 0,
            tag: 0,
            seq: 0,
            aux: 0,
            seg_idx: 0,
            seg_count: 0,
            payload: vec![],
        }
        .encode();
        bytes[1] = WIRE_VERSION + 1;
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert_eq!(
            dec.next_frame().unwrap_err(),
            WireError::Version {
                expected: WIRE_VERSION,
                got: WIRE_VERSION + 1
            }
        );
    }

    #[test]
    fn corrupt_payload_is_counted_and_skipped() {
        let good = Frame {
            kind: FrameKind::Eager,
            src: 1,
            dst: 2,
            tag: 3,
            seq: 7,
            aux: 0,
            seg_idx: 0,
            seg_count: 0,
            payload: vec![0xAB; 32],
        };
        let mut corrupt = good.encode();
        // Flip one payload bit: the checksum must catch it.
        corrupt[HEADER_LEN + 5] ^= 0x10;
        let mut wire = corrupt;
        wire.extend_from_slice(&good.encode());
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        // The corrupt frame is absorbed; the next good one comes out.
        let f = dec.next_frame().unwrap().expect("good frame follows");
        assert_eq!(f, good);
        assert_eq!(dec.take_corrupt(), 1);
        assert_eq!(dec.take_corrupt(), 0, "tally drains");
    }

    #[test]
    fn corrupt_crc_field_is_counted_and_skipped() {
        let good = Frame {
            kind: FrameKind::Heartbeat,
            src: 0,
            dst: 1,
            tag: 0,
            seq: 0,
            aux: 0,
            seg_idx: 0,
            seg_count: 0,
            payload: vec![],
        };
        let mut bytes = good.encode();
        bytes[CRC_OFFSET] ^= 0x01;
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.take_corrupt(), 1);
    }

    #[test]
    fn bad_kind_byte_is_a_stream_error_only_when_checksummed() {
        // A frame re-checksummed around a bogus kind byte is a protocol
        // disagreement, not line noise.
        let mut bytes = Frame {
            kind: FrameKind::Eager,
            src: 0,
            dst: 0,
            tag: 0,
            seq: 0,
            aux: 0,
            seg_idx: 0,
            seg_count: 0,
            payload: vec![],
        }
        .encode();
        bytes[2] = 9;
        let crc = frame_crc(&bytes[..CRC_OFFSET], &[]);
        bytes[CRC_OFFSET..HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert_eq!(dec.next_frame().unwrap_err(), WireError::BadKind { got: 9 });
        // The same flip *without* a fixed-up checksum is just corruption.
        let mut noisy = Frame {
            kind: FrameKind::Eager,
            src: 0,
            dst: 0,
            tag: 0,
            seq: 0,
            aux: 0,
            seg_idx: 0,
            seg_count: 0,
            payload: vec![],
        }
        .encode();
        noisy[2] = 9;
        let mut dec = FrameDecoder::new();
        dec.feed(&noisy);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.take_corrupt(), 1);
    }

    #[test]
    fn oversize_length_is_rejected_not_awaited() {
        let mut bytes = Frame {
            kind: FrameKind::Eager,
            src: 0,
            dst: 0,
            tag: 0,
            seq: 0,
            aux: 0,
            seg_idx: 0,
            seg_count: 0,
            payload: vec![],
        }
        .encode();
        bytes[35..43].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert_eq!(
            dec.next_frame().unwrap_err(),
            WireError::Oversize {
                len: MAX_PAYLOAD + 1
            }
        );
    }
}
