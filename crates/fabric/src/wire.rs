//! The TCP backend's wire protocol: length-prefixed frames with an
//! eager/rendezvous split.
//!
//! Every frame starts with a fixed 41-byte little-endian header:
//!
//! ```text
//! offset  size  field
//!      0     1  kind        (1=EAGER, 2=RTS, 3=CTS, 4=DATA, 5=ACK, 6=HEARTBEAT)
//!      1     4  src rank
//!      5     4  dst rank
//!      9     4  tag
//!     13     8  seq         per-channel sequence (EAGER/RTS/DATA/ACK)
//!     21     8  aux         rendezvous transfer id (RTS/CTS/DATA)
//!     29     2  seg_idx     segment index within a striped message
//!     31     2  seg_count   total segments (0 or 1 = unsegmented)
//!     33     8  payload len
//!     41     …  payload     (EAGER and DATA only)
//! ```
//!
//! Small messages travel as a single `EAGER` frame. Above the eager
//! threshold the sender stashes the payload and sends `RTS`; the receiver
//! answers `CTS` on the same lane's reverse direction; the sender then
//! ships the payload in a `DATA` frame. Because a later eager message can
//! physically arrive before an earlier rendezvous payload, every
//! payload-bearing frame carries its channel sequence number and the
//! receive side reassembles send order (see `store::MsgStore`).
//!
//! `ACK` closes the loss-recovery loop, and acks are **cumulative**: an
//! `ACK` frame's `seq` is the receiver's next-expected sequence for the
//! channel, acknowledging *everything below it* at once. The sender
//! keeps unacked frames in a per-channel pending queue, retransmitting
//! with exponential backoff until the watermark passes them or the
//! retransmit budget runs out. Receivers batch: instead of one control
//! reply per frame, they flush one `ACK` per dirty channel when the
//! inbound socket goes quiet (or every 32 frames under sustained load),
//! and an ack owed on a channel's reverse direction piggybacks in the
//! otherwise-unused `aux` field of the next outgoing `EAGER` frame
//! (`aux = watermark + 1`; 0 means none, since watermark 0 carries no
//! information). The sequence dedup in `store::MsgStore` makes
//! retransmits idempotent, and any later delivery on the channel
//! re-raises the watermark — so a lost ack costs one duplicate frame,
//! never a duplicate message, and never a stuck sender.
//!
//! Under the stripe lane policy (`tcp::LanePolicy::Stripe`) one large
//! message is split into up to k segments, each an ordinary sequenced
//! frame on its own lane. `seg_idx`/`seg_count` tell the receive side
//! how to reassemble: segments of one message occupy *consecutive*
//! channel sequence numbers, so the existing hold-back/dedup machinery
//! orders and de-duplicates them for free, and `store::MsgStore` glues
//! `seg_count` consecutive deliveries back into one message before FIFO
//! release. `seg_count` 0 or 1 means the frame carries a whole message.

use std::io::{self, Read};

/// Frame discriminator (first header byte).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Payload inline; the whole message in one frame.
    Eager = 1,
    /// Rendezvous request-to-send: announces `seq` under transfer `aux`.
    Rts = 2,
    /// Rendezvous clear-to-send: receiver grants transfer `aux`.
    Cts = 3,
    /// Rendezvous payload for transfer `aux`.
    Data = 4,
    /// Cumulative acknowledgement: `seq` is the receiver's
    /// next-expected sequence on this channel; the sender drops every
    /// pending frame below it from its retransmit queue.
    Ack = 5,
    /// Liveness beacon for the node pair. Carries no channel state —
    /// src/dst are representative ranks of the two nodes, seq/aux are
    /// zero. Any frame arrival proves the peer alive; heartbeats exist
    /// only so a *quiet* pair still proves it (see `tcp` heartbeat
    /// sideband). Never acked, never retransmitted, never sequenced.
    Heartbeat = 6,
}

impl FrameKind {
    fn from_u8(v: u8) -> io::Result<FrameKind> {
        match v {
            1 => Ok(FrameKind::Eager),
            2 => Ok(FrameKind::Rts),
            3 => Ok(FrameKind::Cts),
            4 => Ok(FrameKind::Data),
            5 => Ok(FrameKind::Ack),
            6 => Ok(FrameKind::Heartbeat),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad frame kind byte {other}"),
            )),
        }
    }
}

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 41;

/// One wire frame (header fields plus owned payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Frame discriminator.
    pub kind: FrameKind,
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Message tag.
    pub tag: u32,
    /// Per-channel sequence number (EAGER/RTS/DATA), or the cumulative
    /// next-expected watermark (ACK).
    pub seq: u64,
    /// Rendezvous transfer id (RTS/CTS/DATA), or a piggybacked
    /// cumulative ack for the reverse channel (EAGER): `watermark + 1`,
    /// with 0 meaning no ack aboard.
    pub aux: u64,
    /// Segment index within a striped message (EAGER/DATA under the
    /// stripe lane policy); 0 otherwise.
    pub seg_idx: u16,
    /// Total segments of the striped message this frame belongs to.
    /// 0 or 1 means the frame carries a whole, unsegmented message.
    pub seg_count: u16,
    /// Inline payload (EAGER/DATA; empty otherwise).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Encode the frame as header + payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        self.encode_into(&mut out);
        out
    }

    /// Encode into `out`, replacing its contents. Reuses `out`'s
    /// existing capacity — this is how pooled frame buffers avoid a
    /// fresh allocation per message (see `pool::FramePool::encode`).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        self.encode_into_with(out, &self.payload);
    }

    /// [`Frame::encode_into`] with the payload supplied as a slice,
    /// ignoring `self.payload`. This is how the stripe send path encodes
    /// each segment straight from a sub-slice of the caller's message —
    /// one header per segment, zero intermediate payload copies.
    pub fn encode_into_with(&self, out: &mut Vec<u8>, payload: &[u8]) {
        out.clear();
        out.reserve(HEADER_LEN + payload.len());
        out.push(self.kind as u8);
        out.extend_from_slice(&self.src.to_le_bytes());
        out.extend_from_slice(&self.dst.to_le_bytes());
        out.extend_from_slice(&self.tag.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.aux.to_le_bytes());
        out.extend_from_slice(&self.seg_idx.to_le_bytes());
        out.extend_from_slice(&self.seg_count.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
    }

    /// Read one frame from `r` (blocking). `Err` on EOF or a malformed
    /// header — both mean the connection is done.
    pub fn read_from(r: &mut impl Read) -> io::Result<Frame> {
        let mut h = [0u8; HEADER_LEN];
        r.read_exact(&mut h)?;
        let kind = FrameKind::from_u8(h[0])?;
        let src = u32::from_le_bytes(h[1..5].try_into().unwrap());
        let dst = u32::from_le_bytes(h[5..9].try_into().unwrap());
        let tag = u32::from_le_bytes(h[9..13].try_into().unwrap());
        let seq = u64::from_le_bytes(h[13..21].try_into().unwrap());
        let aux = u64::from_le_bytes(h[21..29].try_into().unwrap());
        let seg_idx = u16::from_le_bytes(h[29..31].try_into().unwrap());
        let seg_count = u16::from_le_bytes(h[31..33].try_into().unwrap());
        let len = u64::from_le_bytes(h[33..41].try_into().unwrap());
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame length overflow"))?;
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload)?;
        Ok(Frame {
            kind,
            src,
            dst,
            tag,
            seq,
            aux,
            seg_idx,
            seg_count,
            payload,
        })
    }

    /// The channel this frame belongs to.
    pub fn chan(&self) -> crate::ChanKey {
        (self.src as usize, self.dst as usize, self.tag)
    }

    /// Peek a payload frame's identity (channel + sequence) straight
    /// from its encoded header, without touching the payload. `None`
    /// for control kinds — the kinds the retransmit table never holds.
    pub fn peek_payload_id(bytes: &[u8]) -> Option<(crate::ChanKey, u64)> {
        if bytes.len() < HEADER_LEN {
            return None;
        }
        match FrameKind::from_u8(bytes[0]) {
            Ok(FrameKind::Eager | FrameKind::Data) => {}
            _ => return None,
        }
        let src = u32::from_le_bytes(bytes[1..5].try_into().unwrap()) as usize;
        let dst = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
        let tag = u32::from_le_bytes(bytes[9..13].try_into().unwrap());
        let seq = u64::from_le_bytes(bytes[13..21].try_into().unwrap());
        Some(((src, dst, tag), seq))
    }

    /// Decode one frame from the front of `bytes`, if a complete one is
    /// present. Returns the frame and its encoded length, `Ok(None)` if
    /// more bytes are needed, and `Err` on a malformed header (a byte
    /// stream cannot be resynced past a garbled header).
    fn decode_prefix(bytes: &[u8]) -> io::Result<Option<(Frame, usize)>> {
        if bytes.len() < HEADER_LEN {
            return Ok(None);
        }
        let kind = FrameKind::from_u8(bytes[0])?;
        let len = u64::from_le_bytes(bytes[33..41].try_into().unwrap());
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame length overflow"))?;
        let total = HEADER_LEN
            .checked_add(len)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "frame length overflow"))?;
        if bytes.len() < total {
            return Ok(None);
        }
        Ok(Some((
            Frame {
                kind,
                src: u32::from_le_bytes(bytes[1..5].try_into().unwrap()),
                dst: u32::from_le_bytes(bytes[5..9].try_into().unwrap()),
                tag: u32::from_le_bytes(bytes[9..13].try_into().unwrap()),
                seq: u64::from_le_bytes(bytes[13..21].try_into().unwrap()),
                aux: u64::from_le_bytes(bytes[21..29].try_into().unwrap()),
                seg_idx: u16::from_le_bytes(bytes[29..31].try_into().unwrap()),
                seg_count: u16::from_le_bytes(bytes[31..33].try_into().unwrap()),
                payload: bytes[HEADER_LEN..total].to_vec(),
            },
            total,
        )))
    }
}

/// Incremental frame decoder for nonblocking sockets: feed it whatever
/// byte chunks the kernel hands back, pull out as many complete frames
/// as have accumulated. A frame split across reads simply waits in the
/// buffer until its tail arrives — the nonblocking analogue of
/// [`Frame::read_from`]'s blocking `read_exact` pair.
///
/// The internal buffer is reused across frames (consumed bytes are
/// compacted away lazily), so a steady stream of small frames settles
/// into zero decoder-side allocations apart from the per-frame payload
/// vector the receiver keeps anyway.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already decoded and awaiting compaction.
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append freshly read bytes to the undecoded tail.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: reclaiming the consumed prefix keeps
        // the buffer from creeping up under a long-lived connection.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Decode the next complete frame, if one has fully arrived.
    /// `Ok(None)` means "need more bytes"; `Err` means the stream is
    /// garbled beyond recovery (reconnect, don't resync).
    pub fn next_frame(&mut self) -> io::Result<Option<Frame>> {
        match Frame::decode_prefix(&self.buf[self.pos..])? {
            Some((frame, used)) => {
                self.pos += used;
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    /// Bytes buffered but not yet decoded into a frame (a partial frame
    /// in flight).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        for (kind, payload) in [
            (FrameKind::Eager, vec![1u8, 2, 3]),
            (FrameKind::Rts, vec![]),
            (FrameKind::Cts, vec![]),
            (FrameKind::Data, vec![0u8; 1000]),
            (FrameKind::Ack, vec![]),
            (FrameKind::Heartbeat, vec![]),
        ] {
            let f = Frame {
                kind,
                src: 3,
                dst: 11,
                tag: 42,
                seq: 9,
                aux: 77,
                seg_idx: 2,
                seg_count: 5,
                payload,
            };
            let bytes = f.encode();
            assert_eq!(bytes.len(), HEADER_LEN + f.payload.len());
            let mut cursor = &bytes[..];
            let back = Frame::read_from(&mut cursor).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn zero_length_payload_roundtrips() {
        let f = Frame {
            kind: FrameKind::Eager,
            src: 0,
            dst: 1,
            tag: 0,
            seq: 0,
            aux: 0,
            seg_idx: 0,
            seg_count: 0,
            payload: vec![],
        };
        let mut cursor = &f.encode()[..];
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), f);
    }

    #[test]
    fn encode_into_replaces_dirty_contents() {
        let f = Frame {
            kind: FrameKind::Eager,
            src: 1,
            dst: 2,
            tag: 3,
            seq: 4,
            aux: 5,
            seg_idx: 1,
            seg_count: 2,
            payload: vec![6, 7],
        };
        let mut buf = vec![0xFFu8; 500];
        f.encode_into(&mut buf);
        assert_eq!(buf, f.encode());
    }

    #[test]
    fn segment_fields_sit_at_their_documented_offsets() {
        let f = Frame {
            kind: FrameKind::Data,
            src: 1,
            dst: 2,
            tag: 3,
            seq: 10,
            aux: 4,
            seg_idx: 3,
            seg_count: 7,
            payload: vec![0xAA; 5],
        };
        let bytes = f.encode();
        assert_eq!(u16::from_le_bytes(bytes[29..31].try_into().unwrap()), 3);
        assert_eq!(u16::from_le_bytes(bytes[31..33].try_into().unwrap()), 7);
        assert_eq!(u64::from_le_bytes(bytes[33..41].try_into().unwrap()), 5);
        let back = Frame::read_from(&mut &bytes[..]).unwrap();
        assert_eq!((back.seg_idx, back.seg_count), (3, 7));
    }

    #[test]
    fn encode_into_with_substitutes_the_payload() {
        let f = Frame {
            kind: FrameKind::Eager,
            src: 1,
            dst: 2,
            tag: 3,
            seq: 4,
            aux: 0,
            seg_idx: 1,
            seg_count: 4,
            payload: vec![],
        };
        let mut out = Vec::new();
        f.encode_into_with(&mut out, &[9, 8, 7]);
        let mut whole = f.clone();
        whole.payload = vec![9, 8, 7];
        assert_eq!(out, whole.encode(), "slice payload encodes identically");
    }

    #[test]
    fn decoder_reassembles_frames_split_across_reads() {
        let frames: Vec<Frame> = (0..5u8)
            .map(|i| Frame {
                kind: FrameKind::Eager,
                src: i as u32,
                dst: 1,
                tag: 2,
                seq: i as u64,
                aux: 0,
                seg_idx: 0,
                seg_count: 0,
                payload: vec![i; 10 + i as usize * 7],
            })
            .collect();
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        // Feed in ragged chunks that never align with frame boundaries.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(13) {
            dec.feed(chunk);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(dec.pending_bytes(), 0);
    }

    #[test]
    fn decoder_surfaces_garbled_headers() {
        let mut bytes = Frame {
            kind: FrameKind::Eager,
            src: 0,
            dst: 0,
            tag: 0,
            seq: 0,
            aux: 0,
            seg_idx: 0,
            seg_count: 0,
            payload: vec![1, 2],
        }
        .encode();
        bytes[0] = 0xFF;
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert_eq!(
            dec.next_frame().unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn bad_kind_byte_is_invalid_data() {
        let mut bytes = Frame {
            kind: FrameKind::Eager,
            src: 0,
            dst: 0,
            tag: 0,
            seq: 0,
            aux: 0,
            seg_idx: 0,
            seg_count: 0,
            payload: vec![],
        }
        .encode();
        bytes[0] = 9;
        let err = Frame::read_from(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
