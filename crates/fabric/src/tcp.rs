//! The socket backend: real loopback TCP with **k striped lanes** per
//! node pair — the paper's multi-object internode transport made
//! concrete, now with loss recovery and lane failover.
//!
//! Topology: every node pair gets `lanes` TCP connections. A message's
//! lane is determined by its *sending rank's local id* striped over the
//! lanes that are still alive, so each of a node's ranks drives its own
//! lane — exactly the paper's mapping of objects to local ranks (Fig. 2)
//! — and a killed lane's traffic degrades onto the survivors. Each
//! connection endpoint has two dedicated progress threads:
//!
//! * a **writer** draining that lane's send queue, coalescing queued
//!   frames into large `write` calls (message coalescing amortizes the
//!   per-syscall injection cost);
//! * a **reader** decoding frames (`BufReader`-amortized) and either
//!   delivering payloads into the destination node's message store or
//!   answering the rendezvous handshake and acking eager frames.
//!
//! Backpressure: each lane's user send queue is bounded; `send` blocks
//! (and counts a stall) while it is full. Protocol replies (CTS, DATA,
//! ACK) travel on an unbounded control queue that writers drain first —
//! reader threads therefore never block on a full queue, which is what
//! makes the writer/reader mesh deadlock-free: readers always drain the
//! wire, so TCP flow control always eventually releases any blocked
//! writer.
//!
//! Hot-path economics: an eager frame is encoded exactly once into a
//! pooled, refcounted buffer ([`crate::pool::FrameBuf`]) — the send
//! queue, the retransmit pending queue, and any retransmit in flight
//! share refcounts on the same bytes, and the buffer recycles when the
//! last holder drops. After pool warm-up the steady-state eager send
//! path performs no heap allocation at all. Blocking waits (full send
//! queue, empty writer queue, empty receive channel) spin briefly
//! before parking ([`crate::wait::Spinner`], `PIPMCOLL_SPIN_US`), since
//! at target message rates the awaited state usually arrives within
//! microseconds of the wait starting.
//!
//! Robustness (the PR 3 layer):
//!
//! * **Cumulative ack + retransmit** — every eager frame stays in its
//!   channel's pending queue until the receiver's ack *watermark* (the
//!   next-expected sequence, covering everything below it) passes it.
//!   Receivers batch acks — one ACK per dirty channel when the inbound
//!   socket goes quiet, or every 32 frames under sustained load — and
//!   piggyback them on reverse-direction eager frames in the spare
//!   `aux` header field, so an a→b / b→a stream pair needs almost no
//!   standalone control frames. A dedicated retransmit thread re-sends
//!   unacked frames with exponential backoff and jitter; the receiver's
//!   sequence dedup (`store::MsgStore`) makes re-deliveries idempotent,
//!   and every delivery (duplicates included) re-raises the watermark,
//!   so a lost ack never wedges the sender. A frame that exhausts its
//!   budget becomes a [`FabricError::PeerHung`], not a panic.
//! * **Reconnect** — a broken socket is reported to a repair thread that
//!   owns the listener; it re-establishes the connection (both
//!   directions) and respawns progress threads, deduplicating reports
//!   from the up-to-four threads of one connection by generation number.
//!   Frames lost in the break are recovered by retransmit.
//! * **Lane failover** — [`Fabric::kill_lane`] severs a lane and future
//!   sends restripe over the survivors. Per-channel FIFO survives
//!   because receivers reassemble by sequence number regardless of the
//!   arrival lane. The last surviving lane refuses to die.
//! * **Chaos** — when a [`WireChaos`] stream is installed, every eager
//!   frame's first transmission rolls a fate *below* sequence
//!   assignment: a dropped frame looks exactly like wire loss (the
//!   retransmit path recovers it) and a duplicate looks exactly like a
//!   spurious retransmit (dedup collapses it).
//!
//! Node-local messages never touch a socket: one "node" here is a set of
//! ranks sharing an address space, so a self-send is delivered straight
//! into the node's store (counted separately in [`FabricStats`]).

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pipmcoll_model::Topology;

use crate::chaos::{ChaosRng, FrameFate, WireChaos};
use crate::error::{DeadPeer, FabricDiag, FabricError, FabricHealth, FabricResult, QueueDiag};
use crate::pool::{FrameBuf, FramePool, PoolStats};
use crate::stats::{FabricStats, LaneStats, LatencyHist};
use crate::store::MsgStore;
use crate::timeout::sync_timeout;
use crate::wait::Spinner;
use crate::wire::{Frame, FrameKind};
use crate::{ChanKey, Fabric};

/// Tuning knobs for [`TcpFabric`].
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Striped connections per node pair (the paper's object count k).
    pub lanes: usize,
    /// Largest payload sent eagerly; above this the rendezvous handshake
    /// (RTS/CTS/DATA) is used.
    pub eager_max: usize,
    /// Bounded depth (in messages) of each lane's user send queue.
    pub queue_cap: usize,
    /// Base retransmit timeout: how long an eager frame may stay unacked
    /// before its first re-send (doubles per attempt, jittered).
    pub rto: Duration,
    /// Re-send budget per eager frame; exhausting it records a
    /// [`FabricError::PeerDead`] verdict against the receiver.
    pub max_retransmits: u32,
    /// Heartbeat sideband interval per node pair: a pair that has sent
    /// nothing for this long gets a standalone [`FrameKind::Heartbeat`]
    /// frame (busy pairs piggyback liveness on their regular traffic —
    /// any frame arrival counts as a beat). [`Duration::ZERO`] disables
    /// the sideband. Default from `PIPMCOLL_HEARTBEAT_MS` (250 ms).
    pub heartbeat: Duration,
    /// Missed-beat budget: a node silent for `heartbeat * misses` is
    /// suspected dead (cleared the instant any frame arrives from it).
    pub heartbeat_misses: u32,
}

/// `PIPMCOLL_HEARTBEAT_MS` (0 disables), parsed once.
fn env_heartbeat() -> Duration {
    static HB: std::sync::OnceLock<Duration> = std::sync::OnceLock::new();
    *HB.get_or_init(|| match std::env::var("PIPMCOLL_HEARTBEAT_MS") {
        Err(_) => Duration::from_millis(250),
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(ms) => Duration::from_millis(ms),
            Err(_) => panic!("PIPMCOLL_HEARTBEAT_MS must be a millisecond count, got {v:?}"),
        },
    })
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            lanes: 4,
            eager_max: 64 * 1024,
            queue_cap: 256,
            rto: Duration::from_millis(25),
            max_retransmits: 8,
            heartbeat: env_heartbeat(),
            heartbeat_misses: 4,
        }
    }
}

/// Writers coalesce queued frames into batches of at most this many bytes
/// per `write` call.
const BATCH_MAX: usize = 256 * 1024;

/// `(from_node, to_node, lane)` — one direction of one lane connection.
type LaneKey = (usize, usize, usize);

#[derive(Default)]
struct QueueInner {
    user: VecDeque<FrameBuf>,
    ctrl: VecDeque<FrameBuf>,
    closed: bool,
}

/// Why a bounded push did not complete.
enum PushError {
    /// The queue stayed at capacity for the whole [`sync_timeout`].
    Timeout(Duration),
    /// The queue mutex was poisoned by a panicking thread.
    Poisoned,
}

/// One lane endpoint's send side: bounded user queue + unbounded control
/// queue (drained first). The queue object outlives any one socket: a
/// reconnected connection's new writer drains the same queue, and the
/// `epoch` counter tells a superseded writer to stand down without
/// stealing frames from its replacement.
struct SendQueue {
    inner: Mutex<QueueInner>,
    cap: usize,
    /// Bumped when the draining writer is replaced (reconnect, lane
    /// kill); a writer holding a stale epoch exits at its next wakeup.
    epoch: AtomicU64,
    /// Deepest the unbounded control queue has ever been — the one
    /// queue backpressure cannot bound, so it gets a high-water mark.
    ctrl_hwm: AtomicU64,
    /// Signalled when the user queue drains below capacity.
    can_push: Condvar,
    /// Signalled when anything is queued (or the queue closes/turns over).
    can_pop: Condvar,
}

impl SendQueue {
    fn new(cap: usize) -> Self {
        SendQueue {
            inner: Mutex::new(QueueInner::default()),
            cap,
            epoch: AtomicU64::new(0),
            ctrl_hwm: AtomicU64::new(0),
            can_push: Condvar::new(),
            can_pop: Condvar::new(),
        }
    }

    /// Enqueue a user frame, blocking while the queue is at capacity.
    /// Returns whether the caller stalled waiting for space.
    fn push_user(&self, frame: FrameBuf) -> Result<bool, PushError> {
        let start = Instant::now();
        let deadline = start + sync_timeout();
        let mut spinner = Spinner::new();
        let mut g = self.inner.lock().map_err(|_| PushError::Poisoned)?;
        let mut stalled = false;
        while g.user.len() >= self.cap && !g.closed {
            stalled = true;
            let now = Instant::now();
            if now >= deadline {
                return Err(PushError::Timeout(now.saturating_duration_since(start)));
            }
            // The writer usually frees a slot within microseconds; spin
            // through that window before paying for a park.
            if spinner.turn() {
                drop(g);
                g = self.inner.lock().map_err(|_| PushError::Poisoned)?;
                continue;
            }
            // Saturating: the deadline may slip into the past between the
            // check above and this subtraction.
            let wait = deadline.saturating_duration_since(now);
            let (guard, _) = self
                .can_push
                .wait_timeout(g, wait)
                .map_err(|_| PushError::Poisoned)?;
            g = guard;
        }
        g.user.push_back(frame);
        drop(g);
        self.can_pop.notify_one();
        Ok(stalled)
    }

    /// Enqueue a protocol frame (CTS/DATA/ACK, retransmits). Never
    /// blocks — this is what keeps reader threads always able to drain
    /// the wire. Returns `false` only on a poisoned queue.
    fn push_ctrl(&self, frame: FrameBuf) -> bool {
        match self.inner.lock() {
            Ok(mut g) => {
                g.ctrl.push_back(frame);
                let depth = g.ctrl.len() as u64;
                drop(g);
                self.ctrl_hwm.fetch_max(depth, Ordering::Relaxed);
                self.can_pop.notify_one();
                true
            }
            Err(_) => false,
        }
    }

    /// Move up to `BATCH_MAX` bytes of queued frames into `buf`
    /// (control frames first). Blocks while empty; returns `false` once
    /// the queue is closed and fully drained, or once this writer's
    /// `my_epoch` is superseded by a replacement.
    fn pop_batch(&self, my_epoch: u64, buf: &mut Vec<u8>) -> bool {
        buf.clear();
        let mut spinner = Spinner::new();
        let Ok(mut g) = self.inner.lock() else {
            return false;
        };
        loop {
            if self.epoch.load(Ordering::Relaxed) != my_epoch {
                return false;
            }
            while buf.len() < BATCH_MAX {
                let next = g.ctrl.pop_front().or_else(|| g.user.pop_front());
                match next {
                    // The frame's refcount drops here; the pending table
                    // (if any) keeps the underlying buffer alive.
                    Some(f) => buf.extend_from_slice(&f),
                    None => break,
                }
            }
            if !buf.is_empty() {
                drop(g);
                self.can_push.notify_all();
                return true;
            }
            if g.closed {
                return false;
            }
            // Spin before parking: under load the next frame lands well
            // inside the spin budget.
            if spinner.turn() {
                drop(g);
                let Ok(guard) = self.inner.lock() else {
                    return false;
                };
                g = guard;
                continue;
            }
            let Ok(guard) = self.can_pop.wait(g) else {
                return false;
            };
            g = guard;
        }
    }

    /// Frames queued and not yet written to the wire.
    fn depth(&self) -> usize {
        self.inner
            .lock()
            .map(|g| g.user.len() + g.ctrl.len())
            .unwrap_or(0)
    }

    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Retire the current writer (it exits at its next wakeup without
    /// popping more frames; queued frames wait for the replacement).
    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
        self.can_pop.notify_all();
        self.can_push.notify_all();
    }

    fn close(&self) {
        if let Ok(mut g) = self.inner.lock() {
            g.closed = true;
        }
        self.can_pop.notify_all();
        self.can_push.notify_all();
    }
}

struct LaneCounters {
    msgs: AtomicU64,
    bytes: AtomicU64,
    stalls: AtomicU64,
}

/// A stashed rendezvous payload waiting for the receiver's CTS.
struct RdvMsg {
    chan: ChanKey,
    seq: u64,
    payload: Vec<u8>,
}

/// An eager frame awaiting the receiver's cumulative-ack watermark.
struct PendingFrame {
    /// This frame's channel sequence number.
    seq: u64,
    /// A refcount on the encoded frame (shared with the send queue and
    /// any retransmit in flight), ready to re-send verbatim.
    buf: FrameBuf,
    /// Re-sends performed so far.
    attempts: u32,
    /// When the next re-send (or the exhaustion verdict) is due.
    next_at: Instant,
    /// First transmission instant, for ack round-trip measurement.
    first_sent: Instant,
}

/// One lane connection between a node pair (keyed `(lo, hi, lane)` with
/// `lo < hi`): the current socket pair and its repair generation.
struct ConnEntry {
    /// Bumped on every successful repair; dedups break reports.
    gen: u64,
    /// `lo`'s endpoint stream.
    out: TcpStream,
    /// `hi`'s endpoint stream.
    inn: TcpStream,
}

/// A break report from a progress thread to the repair thread.
struct RepairReq {
    lo: usize,
    hi: usize,
    lane: usize,
    /// The generation the failing thread belonged to (stale reports for
    /// an already-repaired connection are dropped).
    gen: u64,
}

/// Identity of one progress-thread pair's endpoint.
#[derive(Clone, Copy)]
struct EndpointId {
    here: usize,
    peer: usize,
    lane: usize,
    gen: u64,
}

/// Everything shared between `send`/`recv` callers and the progress,
/// repair and retransmit threads.
struct Mesh {
    topo: Topology,
    cfg: TcpConfig,
    /// Per-node receive stores.
    stores: Vec<Arc<MsgStore>>,
    /// Send queues keyed by `(from_node, to_node, lane)`; fixed at
    /// construction, shared across reconnects.
    queues: HashMap<LaneKey, Arc<SendQueue>>,
    /// Live connections keyed by `(lo, hi, lane)`.
    conns: Mutex<HashMap<LaneKey, ConnEntry>>,
    /// Unacked eager frames, per channel in sequence order (sequence
    /// numbers only grow, so a cumulative ack is a pop-front prefix and
    /// each deque keeps its allocation across the whole run).
    pending: Mutex<HashMap<ChanKey, VecDeque<PendingFrame>>>,
    /// Ack watermarks owed to peers, keyed by the received channel.
    /// Drained either by a reader's batched standalone-ack flush or by
    /// a reverse-direction eager send that piggybacks the watermark.
    acks_owed: Mutex<HashMap<ChanKey, u64>>,
    /// Cheap gate so the eager send path skips the `acks_owed` lock
    /// entirely when nothing is owed (the common case).
    owed_len: AtomicUsize,
    /// Pooled frame buffers shared by every encode on this fabric.
    pool: FramePool,
    /// Round-trip from first transmission to the covering ack.
    ack_rtt: LatencyHist,
    /// Failures recorded by progress threads, drained by the runtime.
    errors: Mutex<Vec<FabricError>>,
    /// Per-lane kill flags; a killed lane is never repaired.
    killed: Vec<AtomicBool>,
    shutdown: AtomicBool,
    /// Frame-level fault stream, when a chaos wrapper installed one.
    chaos: Mutex<Option<Arc<WireChaos>>>,
    /// Next send sequence per channel.
    seqs: Mutex<HashMap<ChanKey, u64>>,
    /// Rendezvous payloads stashed until the receiver grants CTS.
    rdv_stash: Mutex<HashMap<u64, RdvMsg>>,
    next_rdv: AtomicU64,
    retransmits: AtomicU64,
    lane_ctrs: Vec<LaneCounters>,
    local_msgs: AtomicU64,
    local_bytes: AtomicU64,
    /// Construction instant; `last_activity` is nanoseconds since this.
    started: Instant,
    /// Nanoseconds (since `started`) of the last frame crossing the wire
    /// in either direction; 0 = never.
    last_activity: AtomicU64,
    /// Nanoseconds (since `started`) node `a` last heard *anything* from
    /// node `b`, flattened `a * nodes + b`; 0 = never (treated as
    /// construction time, since the heartbeat sideband starts at once).
    last_heard: Vec<AtomicU64>,
    /// Nanoseconds node `a` last sent anything to node `b` (same
    /// layout). The send path refreshes this, which is what makes busy
    /// pairs' liveness ride piggyback — the heartbeat thread only emits
    /// a standalone beat when this goes stale.
    last_sent: Vec<AtomicU64>,
    /// Directed suspicion flags (`a` suspects `b`), same layout. Set by
    /// the heartbeat thread past the miss budget, cleared by any frame
    /// arrival from `b`.
    hb_suspected: Vec<AtomicBool>,
    /// Test hook: a muted node's standalone beats are suppressed, so its
    /// peers' suspicion machinery can be exercised without killing real
    /// rank threads.
    muted: Vec<AtomicBool>,
    /// Ranks with a retransmit-exhaustion death verdict:
    /// rank → (last unacked seq, attempts).
    dead_peers: Mutex<HashMap<usize, (u64, u32)>>,
    writer_handles: Mutex<Vec<JoinHandle<()>>>,
    reader_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Mesh {
    fn touch(&self) {
        let nanos = (self.started.elapsed().as_nanos() as u64).max(1);
        self.last_activity.store(nanos, Ordering::Relaxed);
    }

    fn now_nanos(&self) -> u64 {
        (self.started.elapsed().as_nanos() as u64).max(1)
    }

    fn pair(&self, a: usize, b: usize) -> usize {
        a * self.topo.nodes() + b
    }

    /// Node `here` heard a frame from node `peer`: refresh the beat and
    /// retract any suspicion — arrival is proof of life, which is what
    /// resolves a symmetric false-suspicion partition (both sides keep
    /// beating, both sides clear).
    fn note_heard(&self, here: usize, peer: usize) {
        let idx = self.pair(here, peer);
        self.last_heard[idx].store(self.now_nanos(), Ordering::Relaxed);
        self.hb_suspected[idx].store(false, Ordering::Relaxed);
    }

    fn note_sent(&self, here: usize, peer: usize) {
        self.last_sent[self.pair(here, peer)].store(self.now_nanos(), Ordering::Relaxed);
    }

    /// Record a retransmit-exhaustion death verdict against `peer`.
    fn record_dead_peer(&self, peer: usize, last_seq: u64, attempts: u32) {
        if let Ok(mut g) = self.dead_peers.lock() {
            let e = g.entry(peer).or_insert((last_seq, attempts));
            if last_seq >= e.0 {
                *e = (last_seq, attempts.max(e.1));
            }
        }
    }

    /// Ranks this endpoint's local evidence says are dead, as relevant
    /// to a receive on `chan` timing out: the sender if its node's
    /// heartbeat went silent, plus every retransmit-exhausted peer.
    fn suspects_for(&self, chan: ChanKey) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .dead_peers
            .lock()
            .map(|g| g.keys().copied().collect())
            .unwrap_or_default();
        let (src, dst, _) = chan;
        if self.topo.node_of(src) != self.topo.node_of(dst) {
            let idx = self.pair(self.topo.node_of(dst), self.topo.node_of(src));
            if self.hb_suspected[idx].load(Ordering::Relaxed) {
                out.push(src);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn record(&self, e: FabricError) {
        if let Ok(mut g) = self.errors.lock() {
            g.push(e);
        }
    }

    fn dead_lanes(&self) -> Vec<usize> {
        (0..self.cfg.lanes)
            .filter(|&l| self.killed[l].load(Ordering::Relaxed))
            .collect()
    }

    fn alive_lanes(&self) -> Vec<usize> {
        (0..self.cfg.lanes)
            .filter(|&l| !self.killed[l].load(Ordering::Relaxed))
            .collect()
    }

    /// The lane a sending rank's traffic is striped onto right now: its
    /// local id modulo the *surviving* lanes, so killed lanes degrade
    /// onto the rest. `None` only if every lane is dead. Allocation-free
    /// — this sits on the eager send path.
    fn effective_lane(&self, src: usize) -> Option<usize> {
        let alive = |l: &usize| !self.killed[*l].load(Ordering::Relaxed);
        let count = (0..self.cfg.lanes).filter(alive).count();
        if count == 0 {
            return None;
        }
        (0..self.cfg.lanes)
            .filter(alive)
            .nth(self.topo.local_of(src) % count)
    }

    /// Apply a cumulative ack on `chan`: every pending frame below
    /// `watermark` (the receiver's next-expected sequence) is delivered,
    /// so drop the whole prefix from the retransmit queue. First
    /// transmissions feed the ack round-trip histogram; retransmitted
    /// frames do not (their covering ack is ambiguous).
    fn apply_ack(&self, chan: ChanKey, watermark: u64) {
        let now = Instant::now();
        let Ok(mut pending) = self.pending.lock() else {
            return;
        };
        let Some(q) = pending.get_mut(&chan) else {
            return;
        };
        while q.front().is_some_and(|p| p.seq < watermark) {
            let p = q.pop_front().expect("front just checked");
            if p.attempts == 0 {
                self.ack_rtt
                    .record(now.saturating_duration_since(p.first_sent));
            }
        }
    }

    /// Note that `chan`'s receiver owes its sender a cumulative ack up
    /// to `watermark`. Watermarks only rise; `owed_len` lets the send
    /// path and the readers' flush skip the lock when nothing is owed.
    fn note_owed(&self, chan: ChanKey, watermark: u64) {
        if watermark == 0 {
            // Nothing contiguous delivered yet (an out-of-order frame is
            // merely held) — an ack would carry no information.
            return;
        }
        let Ok(mut owed) = self.acks_owed.lock() else {
            return;
        };
        let e = owed.entry(chan).or_insert(0);
        if watermark > *e {
            *e = watermark;
        }
        self.owed_len.store(owed.len(), Ordering::Relaxed);
    }

    /// Flush every owed cumulative ack as a standalone ACK control
    /// frame. Called by readers when their inbound socket goes quiet (or
    /// every 32 frames under sustained load), so a stream of n eager
    /// frames costs far fewer than n control replies. Gated by
    /// `owed_len`, so the idle case is one relaxed atomic load.
    fn flush_owed_acks(&self) {
        if self.owed_len.load(Ordering::Relaxed) == 0 {
            return;
        }
        let drained: Vec<(ChanKey, u64)> = {
            let Ok(mut owed) = self.acks_owed.lock() else {
                return;
            };
            self.owed_len.store(0, Ordering::Relaxed);
            owed.drain().collect()
        };
        let chaos = self.chaos.lock().ok().and_then(|g| g.clone());
        for (chan, wm) in drained {
            if chaos.as_ref().is_some_and(|c| c.ack_fate()) {
                // Ack eaten by the wire: the sender retransmits, the
                // receiver dedups, and the duplicate's re-raised
                // watermark is re-owed — nothing wedges.
                continue;
            }
            let from = self.topo.node_of(chan.1);
            let to = self.topo.node_of(chan.0);
            let Some(lane) = self.effective_lane(chan.1) else {
                continue;
            };
            let ack = Frame {
                kind: FrameKind::Ack,
                src: chan.0 as u32,
                dst: chan.1 as u32,
                tag: chan.2,
                seq: wm,
                aux: 0,
                payload: Vec::new(),
            };
            if let Some(q) = self.queues.get(&(from, to, lane)) {
                if !q.push_ctrl(self.pool.encode(&ack)) {
                    self.record(FabricError::QueuePoisoned {
                        what: "control send queue",
                    });
                }
            }
        }
    }

    /// Process one decoded frame arriving at node `here` from `peer` on
    /// `lane`. Never panics: anything unexpected is recorded and the
    /// reader keeps going.
    fn handle_frame(&self, here: usize, peer: usize, lane: usize, frame: Frame) {
        let reply = self.queues.get(&(here, peer, lane));
        match frame.kind {
            FrameKind::Eager => {
                // A piggybacked cumulative ack for the reverse channel
                // rides in `aux` (watermark + 1; 0 = none aboard).
                if frame.aux > 0 {
                    let rev = (frame.dst as usize, frame.src as usize, frame.tag);
                    self.apply_ack(rev, frame.aux - 1);
                }
                // Record the owed ack even when dedup drops the frame:
                // the previous ack may be the thing that was lost, and
                // the duplicate's watermark re-covers it.
                let chan = frame.chan();
                let (_, watermark) =
                    self.stores[here].deliver_seq_watermark(chan, frame.seq, frame.payload);
                self.note_owed(chan, watermark);
            }
            FrameKind::Data => {
                self.stores[here].deliver_seq(frame.chan(), frame.seq, frame.payload);
            }
            FrameKind::Rts => {
                // Grant immediately: the store reorders, so there is
                // nothing to reserve here.
                let cts = Frame {
                    kind: FrameKind::Cts,
                    payload: Vec::new(),
                    ..frame
                };
                if let Some(q) = reply {
                    q.push_ctrl(self.pool.encode(&cts));
                }
            }
            FrameKind::Cts => {
                let msg = match self.rdv_stash.lock() {
                    Ok(mut g) => g.remove(&frame.aux),
                    Err(_) => {
                        self.record(FabricError::QueuePoisoned {
                            what: "rendezvous stash",
                        });
                        return;
                    }
                };
                // One bad control frame must not kill the lane's reader:
                // record it and keep decoding.
                let Some(msg) = msg else {
                    self.record(FabricError::MalformedFrame {
                        lane,
                        detail: format!(
                            "CTS from node {peer} names unknown rendezvous transfer {}",
                            frame.aux
                        ),
                    });
                    return;
                };
                let data = Frame {
                    kind: FrameKind::Data,
                    src: msg.chan.0 as u32,
                    dst: msg.chan.1 as u32,
                    tag: msg.chan.2,
                    seq: msg.seq,
                    aux: frame.aux,
                    payload: msg.payload,
                };
                if let Some(q) = reply {
                    q.push_ctrl(self.pool.encode(&data));
                }
            }
            FrameKind::Ack => {
                // `seq` is the receiver's next-expected watermark.
                self.apply_ack(frame.chan(), frame.seq);
            }
            FrameKind::Heartbeat => {
                // Nothing to do: the reader already counted the arrival
                // as a beat (any frame kind does).
            }
        }
    }
}

/// The heartbeat thread: one liveness sideband for the whole mesh.
/// Every tick it (a) emits a standalone beat for each directed node
/// pair whose outbound traffic has gone quiet for a full interval —
/// busy pairs never see one, their regular frames *are* the beats —
/// and (b) promotes pairs silent past the miss budget to suspected.
/// Beats ride the control queues, so this thread never blocks on
/// backpressure. Suspicion is node-granular and advisory: the runtime's
/// agreement protocol decides which *ranks* are actually dead.
fn heartbeat_loop(mesh: Arc<Mesh>) {
    let interval = mesh.cfg.heartbeat;
    let budget = interval * mesh.cfg.heartbeat_misses.max(1);
    let tick = (interval / 2).max(Duration::from_millis(1));
    let nodes = mesh.topo.nodes();
    loop {
        std::thread::sleep(tick);
        if mesh.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let now = mesh.now_nanos();
        for a in 0..nodes {
            for b in 0..nodes {
                if a == b {
                    continue;
                }
                let idx = mesh.pair(a, b);
                // Promote silence past the budget to suspicion. An
                // unheard pair (0) is aged from construction.
                let heard = mesh.last_heard[idx].load(Ordering::Relaxed);
                if Duration::from_nanos(now.saturating_sub(heard)) > budget {
                    mesh.hb_suspected[idx].store(true, Ordering::Relaxed);
                }
                // Emit a's beat towards b when a→b has been quiet.
                if mesh.muted[a].load(Ordering::Relaxed) {
                    continue;
                }
                let sent = mesh.last_sent[idx].load(Ordering::Relaxed);
                if Duration::from_nanos(now.saturating_sub(sent)) < interval {
                    continue;
                }
                let Some(lane) = mesh.alive_lanes().first().copied() else {
                    continue;
                };
                let beat = Frame {
                    kind: FrameKind::Heartbeat,
                    src: mesh.topo.rank_of(a, 0) as u32,
                    dst: mesh.topo.rank_of(b, 0) as u32,
                    tag: 0,
                    seq: 0,
                    aux: 0,
                    payload: Vec::new(),
                };
                if let Some(q) = mesh.queues.get(&(a, b, lane)) {
                    if q.push_ctrl(mesh.pool.encode(&beat)) {
                        mesh.note_sent(a, b);
                    }
                }
            }
        }
    }
}

/// Tell the repair thread a connection broke — unless it broke because
/// of shutdown or a deliberate lane kill, which are not repairable.
fn report_break(mesh: &Mesh, tx: &mpsc::Sender<RepairReq>, id: EndpointId) {
    if mesh.shutdown.load(Ordering::Relaxed) || mesh.killed[id.lane].load(Ordering::Relaxed) {
        return;
    }
    let (lo, hi) = if id.here < id.peer {
        (id.here, id.peer)
    } else {
        (id.peer, id.here)
    };
    let _ = tx.send(RepairReq {
        lo,
        hi,
        lane: id.lane,
        gen: id.gen,
    });
}

/// Spawn the writer + reader pair for one endpoint of one connection.
fn spawn_endpoint(
    mesh: &Arc<Mesh>,
    id: EndpointId,
    stream: TcpStream,
    tx: &mpsc::Sender<RepairReq>,
) -> io::Result<()> {
    let EndpointId {
        here, peer, lane, ..
    } = id;
    let queue = mesh
        .queues
        .get(&(here, peer, lane))
        .cloned()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no send queue for endpoint"))?;
    let my_epoch = queue.epoch();

    let wstream = stream.try_clone()?;
    let wmesh = Arc::clone(mesh);
    let wtx = tx.clone();
    let writer = std::thread::Builder::new()
        .name(format!("fab-w {here}->{peer} l{lane} g{}", id.gen))
        .spawn(move || {
            let mut ws = wstream;
            let mut batch = Vec::with_capacity(BATCH_MAX);
            while queue.pop_batch(my_epoch, &mut batch) {
                if ws.write_all(&batch).is_err() {
                    report_break(&wmesh, &wtx, id);
                    return;
                }
                wmesh.touch();
            }
        })?;

    let rmesh = Arc::clone(mesh);
    let rtx = tx.clone();
    let reader = std::thread::Builder::new()
        .name(format!("fab-r {here}<-{peer} l{lane} g{}", id.gen))
        .spawn(move || {
            let mut r = BufReader::with_capacity(BATCH_MAX, stream);
            let mut since_flush = 0u32;
            loop {
                match Frame::read_from(&mut r) {
                    Ok(frame) => {
                        rmesh.touch();
                        // Any frame is a proof of life for the peer node.
                        rmesh.note_heard(here, peer);
                        rmesh.handle_frame(here, peer, lane, frame);
                        since_flush += 1;
                        // Batch acks: flush when the inbound socket goes
                        // quiet (nothing buffered, so we are about to
                        // block) or every 32 frames under sustained load.
                        if since_flush >= 32 || r.buffer().is_empty() {
                            rmesh.flush_owed_acks();
                            since_flush = 0;
                        }
                    }
                    Err(e) => {
                        let deliberate = rmesh.shutdown.load(Ordering::Relaxed)
                            || rmesh.killed[lane].load(Ordering::Relaxed);
                        if !deliberate {
                            if e.kind() == io::ErrorKind::InvalidData {
                                // A garbled header cannot be resynced on a
                                // byte stream; reconnect instead.
                                rmesh.record(FabricError::MalformedFrame {
                                    lane,
                                    detail: format!("unreadable frame from node {peer}: {e}"),
                                });
                            }
                            report_break(&rmesh, &rtx, id);
                        }
                        return;
                    }
                }
            }
        })?;

    if let Ok(mut g) = mesh.writer_handles.lock() {
        g.push(writer);
    }
    if let Ok(mut g) = mesh.reader_handles.lock() {
        g.push(reader);
    }
    Ok(())
}

/// Spawn both endpoints of one connection (`out` = `lo`'s stream).
fn spawn_pair(
    mesh: &Arc<Mesh>,
    key: LaneKey,
    gen: u64,
    out: &TcpStream,
    inn: &TcpStream,
    tx: &mpsc::Sender<RepairReq>,
) -> io::Result<()> {
    let (lo, hi, lane) = key;
    spawn_endpoint(
        mesh,
        EndpointId {
            here: lo,
            peer: hi,
            lane,
            gen,
        },
        out.try_clone()?,
        tx,
    )?;
    spawn_endpoint(
        mesh,
        EndpointId {
            here: hi,
            peer: lo,
            lane,
            gen,
        },
        inn.try_clone()?,
        tx,
    )
}

/// Establish one fresh loopback connection pair (we are both sides, so
/// the repair thread connects and accepts itself).
fn reconnect(listener: &TcpListener, addr: SocketAddr) -> io::Result<(TcpStream, TcpStream)> {
    let out = TcpStream::connect(addr)?;
    let (inn, _) = listener.accept()?;
    out.set_nodelay(true)?;
    inn.set_nodelay(true)?;
    Ok((out, inn))
}

/// The repair thread: owns the listener, serializes reconnects, and
/// dedups the up-to-four break reports per broken connection by
/// generation.
fn repair_loop(
    mesh: Arc<Mesh>,
    listener: TcpListener,
    addr: SocketAddr,
    rx: mpsc::Receiver<RepairReq>,
    tx: mpsc::Sender<RepairReq>,
) {
    while !mesh.shutdown.load(Ordering::Relaxed) {
        let req = match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        if mesh.shutdown.load(Ordering::Relaxed) || mesh.killed[req.lane].load(Ordering::Relaxed) {
            continue;
        }
        let Ok(mut conns) = mesh.conns.lock() else {
            return;
        };
        let key = (req.lo, req.hi, req.lane);
        let Some(entry) = conns.get_mut(&key) else {
            continue;
        };
        if entry.gen != req.gen {
            continue; // already repaired
        }
        // Make every thread of the old connection notice, and retire the
        // old writers so they do not race the replacements for frames.
        let _ = entry.out.shutdown(Shutdown::Both);
        let _ = entry.inn.shutdown(Shutdown::Both);
        for qk in [(req.lo, req.hi, req.lane), (req.hi, req.lo, req.lane)] {
            if let Some(q) = mesh.queues.get(&qk) {
                q.bump_epoch();
            }
        }
        match reconnect(&listener, addr) {
            Ok((out, inn)) => {
                entry.gen += 1;
                match spawn_pair(&mesh, key, entry.gen, &out, &inn, &tx) {
                    Ok(()) => {
                        entry.out = out;
                        entry.inn = inn;
                    }
                    Err(e) => mesh.record(FabricError::LaneDead {
                        lane: req.lane,
                        detail: format!("could not respawn progress threads after reconnect: {e}"),
                    }),
                }
            }
            Err(e) => {
                mesh.record(FabricError::LaneDead {
                    lane: req.lane,
                    detail: format!(
                        "reconnect between nodes {} and {} failed: {e}",
                        req.lo, req.hi
                    ),
                });
                // Stop routing fresh traffic onto a lane we cannot
                // repair — unless it is the last survivor.
                if mesh.alive_lanes().len() > 1 {
                    mesh.killed[req.lane].store(true, Ordering::Relaxed);
                }
            }
        }
    }
}

/// The retransmit thread: re-sends unacked eager frames with exponential
/// backoff + jitter, and converts an exhausted budget into a recorded
/// [`FabricError::PeerHung`].
fn retransmit_loop(mesh: Arc<Mesh>) {
    // Jitter decorrelates retransmit bursts; a fixed seed keeps runs
    // reproducible.
    let mut rng = ChaosRng::new(0xF0F0_F0F0);
    let tick = (mesh.cfg.rto / 4).max(Duration::from_millis(1));
    loop {
        std::thread::sleep(tick);
        if mesh.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let now = Instant::now();
        let mut due: Vec<(ChanKey, u64, FrameBuf)> = Vec::new();
        {
            let Ok(mut pending) = mesh.pending.lock() else {
                mesh.record(FabricError::QueuePoisoned {
                    what: "retransmit table",
                });
                return;
            };
            for (&chan, q) in pending.iter_mut() {
                // Only the channel's *head* frame can be the gap the
                // receiver is stuck on — later unacked frames are
                // usually delivered and merely held behind it, so
                // re-sending them would only feed the dedup counter.
                let Some(p) = q.front_mut() else {
                    continue;
                };
                if now < p.next_at {
                    continue;
                }
                if p.attempts >= mesh.cfg.max_retransmits {
                    // The strongest local death verdict the transport
                    // can reach: the whole retransmit budget spent with
                    // no ack. Recorded as a typed PeerDead (the runtime's
                    // failed-set agreement consumes it via `health()`).
                    let p = q.pop_front().expect("head just checked");
                    mesh.record_dead_peer(chan.1, p.seq, p.attempts);
                    mesh.record(FabricError::PeerDead {
                        peer: chan.1,
                        last_seq: p.seq,
                        attempts: p.attempts,
                    });
                    continue;
                }
                p.attempts += 1;
                let backoff = mesh.cfg.rto * 2u32.saturating_pow(p.attempts).min(64);
                let jittered = backoff.mul_f64(0.75 + 0.5 * rng.unit());
                p.next_at = now + jittered.min(Duration::from_secs(1));
                // Count the attempt *here*, before the frame can reach
                // the wire: once it is pushed the receiver may deliver
                // it and a caller may observe the recovery, so counting
                // after the push makes `stats().retransmits` lag what
                // the fabric demonstrably did (a real test flake).
                mesh.retransmits.fetch_add(1, Ordering::Relaxed);
                // A refcount on the pooled bytes, not a copy.
                due.push((chan, p.seq, p.buf.clone()));
            }
        }
        for (chan, seq, buf) in due {
            // Route via the *current* surviving-lane stripe, so frames
            // lost on a killed lane migrate to the survivors.
            let Some(lane) = mesh.effective_lane(chan.0) else {
                mesh.record(FabricError::LaneDead {
                    lane: 0,
                    detail: format!(
                        "no surviving lane to retransmit {} -> {} tag {} seq {seq}",
                        chan.0, chan.1, chan.2
                    ),
                });
                continue;
            };
            let from = mesh.topo.node_of(chan.0);
            let to = mesh.topo.node_of(chan.1);
            if let Some(q) = mesh.queues.get(&(from, to, lane)) {
                q.push_ctrl(buf);
            }
        }
    }
}

/// Loopback TCP transport with per-node-pair lane pools, ack-based loss
/// recovery, reconnect, and lane failover.
pub struct TcpFabric {
    mesh: Arc<Mesh>,
    repair: Option<JoinHandle<()>>,
    retransmitter: Option<JoinHandle<()>>,
    heartbeater: Option<JoinHandle<()>>,
}

impl TcpFabric {
    /// Build the full lane mesh for `topo` on loopback: `cfg.lanes`
    /// connections per node pair, each with its own writer and reader
    /// progress threads, plus the shared repair and retransmit threads.
    pub fn connect(topo: Topology, cfg: TcpConfig) -> io::Result<TcpFabric> {
        assert!(cfg.lanes >= 1, "a fabric needs at least one lane");
        assert!(cfg.queue_cap >= 1, "send queues need capacity");
        assert!(!cfg.rto.is_zero(), "retransmit timeout must be positive");
        let nodes = topo.nodes();
        let stores: Vec<Arc<MsgStore>> =
            (0..nodes).map(|_| Arc::new(MsgStore::new("tcp"))).collect();
        let lane_ctrs: Vec<LaneCounters> = (0..cfg.lanes)
            .map(|_| LaneCounters {
                msgs: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                stalls: AtomicU64::new(0),
            })
            .collect();
        let mut queues = HashMap::new();
        for a in 0..nodes {
            for b in 0..nodes {
                if a == b {
                    continue;
                }
                for lane in 0..cfg.lanes {
                    queues.insert((a, b, lane), Arc::new(SendQueue::new(cfg.queue_cap)));
                }
            }
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let mesh = Arc::new(Mesh {
            topo,
            cfg,
            stores,
            queues,
            conns: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            acks_owed: Mutex::new(HashMap::new()),
            owed_len: AtomicUsize::new(0),
            pool: FramePool::new(),
            ack_rtt: LatencyHist::new(),
            errors: Mutex::new(Vec::new()),
            killed: (0..cfg.lanes).map(|_| AtomicBool::new(false)).collect(),
            shutdown: AtomicBool::new(false),
            chaos: Mutex::new(None),
            seqs: Mutex::new(HashMap::new()),
            rdv_stash: Mutex::new(HashMap::new()),
            next_rdv: AtomicU64::new(0),
            retransmits: AtomicU64::new(0),
            lane_ctrs,
            local_msgs: AtomicU64::new(0),
            local_bytes: AtomicU64::new(0),
            started: Instant::now(),
            last_activity: AtomicU64::new(0),
            last_heard: (0..nodes * nodes).map(|_| AtomicU64::new(0)).collect(),
            last_sent: (0..nodes * nodes).map(|_| AtomicU64::new(0)).collect(),
            hb_suspected: (0..nodes * nodes).map(|_| AtomicBool::new(false)).collect(),
            muted: (0..nodes).map(|_| AtomicBool::new(false)).collect(),
            dead_peers: Mutex::new(HashMap::new()),
            writer_handles: Mutex::new(Vec::new()),
            reader_handles: Mutex::new(Vec::new()),
        });
        let (tx, rx) = mpsc::channel();
        // Loopback connect/accept pairs deterministically: the accept
        // queue is FIFO, and we connect one socket at a time.
        let mut conns = HashMap::new();
        for a in 0..nodes {
            for b in (a + 1)..nodes {
                for lane in 0..cfg.lanes {
                    let out = TcpStream::connect(addr)?;
                    let (inn, _) = listener.accept()?;
                    out.set_nodelay(true)?;
                    inn.set_nodelay(true)?;
                    spawn_pair(&mesh, (a, b, lane), 0, &out, &inn, &tx)?;
                    conns.insert((a, b, lane), ConnEntry { gen: 0, out, inn });
                }
            }
        }
        *mesh.conns.lock().expect("fresh mutex cannot be poisoned") = conns;
        let repair = std::thread::Builder::new()
            .name("fab-repair".into())
            .spawn({
                let mesh = Arc::clone(&mesh);
                move || repair_loop(mesh, listener, addr, rx, tx)
            })?;
        let retransmitter = std::thread::Builder::new()
            .name("fab-retransmit".into())
            .spawn({
                let mesh = Arc::clone(&mesh);
                move || retransmit_loop(mesh)
            })?;
        let heartbeater = if nodes > 1 && !cfg.heartbeat.is_zero() {
            Some(
                std::thread::Builder::new()
                    .name("fab-heartbeat".into())
                    .spawn({
                        let mesh = Arc::clone(&mesh);
                        move || heartbeat_loop(mesh)
                    })?,
            )
        } else {
            None
        };
        Ok(TcpFabric {
            mesh,
            repair: Some(repair),
            retransmitter: Some(retransmitter),
            heartbeater,
        })
    }

    /// This backend's configuration.
    pub fn config(&self) -> TcpConfig {
        self.mesh.cfg
    }

    /// Counters of the shared frame-buffer pool (hits/misses/recycles) —
    /// the observable behind the zero-steady-state-allocation claim.
    pub fn pool_stats(&self) -> PoolStats {
        self.mesh.pool.stats()
    }

    /// Test hook: suppress (or restore) `node`'s standalone heartbeat
    /// beats, so peers' suspicion machinery can be exercised without
    /// killing rank threads. Regular traffic from the node still counts
    /// as proof of life — exactly the piggybacking contract.
    pub fn mute_node(&self, node: usize, muted: bool) {
        if let Some(m) = self.mesh.muted.get(node) {
            m.store(muted, Ordering::Relaxed);
        }
    }

    /// Test/chaos hook: sever the socket of one lane connection without
    /// marking the lane dead, forcing the repair thread to reconnect it.
    /// Returns `false` if no such connection exists.
    pub fn break_connection(&self, a: usize, b: usize, lane: usize) -> bool {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let Ok(conns) = self.mesh.conns.lock() else {
            return false;
        };
        match conns.get(&(lo, hi, lane)) {
            Some(e) => {
                let _ = e.out.shutdown(Shutdown::Both);
                let _ = e.inn.shutdown(Shutdown::Both);
                true
            }
            None => false,
        }
    }
}

impl Fabric for TcpFabric {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn lanes(&self) -> usize {
        self.mesh.cfg.lanes
    }

    fn send(&self, key: ChanKey, payload: Vec<u8>) -> FabricResult<()> {
        let mesh = &self.mesh;
        let (src, dst, _) = key;
        let node_s = mesh.topo.node_of(src);
        let node_d = mesh.topo.node_of(dst);
        if node_s == node_d {
            // Same address space: no socket, no lane.
            mesh.local_msgs.fetch_add(1, Ordering::Relaxed);
            mesh.local_bytes
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            mesh.stores[node_d].push(key, payload);
            return Ok(());
        }
        let seq = {
            let mut g = mesh.seqs.lock().map_err(|_| FabricError::QueuePoisoned {
                what: "sequence table",
            })?;
            let c = g.entry(key).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        let Some(lane) = mesh.effective_lane(src) else {
            return Err(FabricError::LaneDead {
                lane: mesh.topo.local_of(src) % mesh.cfg.lanes,
                detail: "no surviving lane".into(),
            });
        };
        // Outbound traffic doubles as this node pair's heartbeat.
        mesh.note_sent(node_s, node_d);
        let ctrs = &mesh.lane_ctrs[lane];
        ctrs.msgs.fetch_add(1, Ordering::Relaxed);
        ctrs.bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        let eager = payload.len() <= mesh.cfg.eager_max;
        let frame = if eager {
            // Piggyback any cumulative ack owed on the reverse channel
            // in the spare `aux` field (watermark + 1; 0 = none). The
            // `owed_len` gate keeps the common no-acks-owed case to one
            // relaxed load.
            let mut aux = 0;
            if mesh.owed_len.load(Ordering::Relaxed) > 0 {
                if let Ok(mut owed) = mesh.acks_owed.lock() {
                    if let Some(wm) = owed.remove(&(dst, src, key.2)) {
                        aux = wm + 1;
                        mesh.owed_len.store(owed.len(), Ordering::Relaxed);
                    }
                }
            }
            Frame {
                kind: FrameKind::Eager,
                src: src as u32,
                dst: dst as u32,
                tag: key.2,
                seq,
                aux,
                payload,
            }
        } else {
            let rdv = mesh.next_rdv.fetch_add(1, Ordering::Relaxed);
            mesh.rdv_stash
                .lock()
                .map_err(|_| FabricError::QueuePoisoned {
                    what: "rendezvous stash",
                })?
                .insert(
                    rdv,
                    RdvMsg {
                        chan: key,
                        seq,
                        payload,
                    },
                );
            Frame {
                kind: FrameKind::Rts,
                src: src as u32,
                dst: dst as u32,
                tag: key.2,
                seq,
                aux: rdv,
                payload: Vec::new(),
            }
        };
        // The one encode on the eager path: header + payload laid out
        // into a pooled buffer; every holder below is a refcount.
        let buf = mesh.pool.encode(&frame);
        let q = mesh
            .queues
            .get(&(node_s, node_d, lane))
            .ok_or_else(|| FabricError::LaneDead {
                lane,
                detail: "no send queue for this node pair".into(),
            })?;
        let push = |buf: FrameBuf| {
            q.push_user(buf).map_err(|e| match e {
                PushError::Timeout(waited) => FabricError::PeerHung {
                    chan: key,
                    attempts: 0,
                    detail: format!(
                        "send queue on lane {lane} stayed full for {waited:?} — receiver not draining"
                    ),
                },
                PushError::Poisoned => FabricError::QueuePoisoned { what: "send queue" },
            })
        };
        if eager {
            // Register for retransmit before the frame can be lost. The
            // pending queue holds a refcount on the same pooled bytes —
            // sequence numbers only grow, so the cumulative ack pops a
            // prefix and the deque keeps its allocation.
            let now = Instant::now();
            mesh.pending
                .lock()
                .map_err(|_| FabricError::QueuePoisoned {
                    what: "retransmit table",
                })?
                .entry(key)
                .or_default()
                .push_back(PendingFrame {
                    seq,
                    buf: buf.clone(),
                    attempts: 0,
                    next_at: now + mesh.cfg.rto,
                    first_sent: now,
                });
            let fate = {
                let chaos = mesh.chaos.lock().ok().and_then(|g| g.clone());
                chaos.map_or(FrameFate::Deliver, |c| c.fate())
            };
            let stalled = match fate {
                // "Lost on the wire": the retransmit thread recovers it.
                FrameFate::Drop => false,
                FrameFate::Dup => {
                    let a = push(buf.clone())?;
                    let b = push(buf)?;
                    a || b
                }
                FrameFate::Deliver => push(buf)?,
            };
            if stalled {
                ctrs.stalls.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            // Rendezvous handshake traffic is not chaos-dropped and not
            // retransmitted; a lost handshake surfaces as a timeout.
            if push(buf)? {
                ctrs.stalls.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    fn recv_within(&self, key: ChanKey, timeout: Duration) -> FabricResult<Vec<u8>> {
        let mesh = &self.mesh;
        let node_d = mesh.topo.node_of(key.1);
        match mesh.stores[node_d].pop_within(key, timeout) {
            Err(FabricError::Timeout(mut d)) => {
                // Enrich the store's channel-level view with the lane
                // and sender-queue state only this backend knows.
                let node_s = mesh.topo.node_of(key.0);
                if node_s != node_d {
                    d.lane = mesh.effective_lane(key.0);
                    d.send_queue_depth = d
                        .lane
                        .and_then(|l| mesh.queues.get(&(node_s, node_d, l)))
                        .map(|q| q.depth());
                }
                d.dead_lanes = mesh.dead_lanes();
                d.suspected = mesh.suspects_for(key);
                Err(FabricError::Timeout(d))
            }
            r => r,
        }
    }

    fn reset(&self) {
        for s in &self.mesh.stores {
            s.clear_ready();
        }
    }

    fn stats(&self) -> FabricStats {
        let mesh = &self.mesh;
        FabricStats {
            lanes: mesh
                .lane_ctrs
                .iter()
                .map(|c| LaneStats {
                    msgs: c.msgs.load(Ordering::Relaxed),
                    bytes: c.bytes.load(Ordering::Relaxed),
                    stalls: c.stalls.load(Ordering::Relaxed),
                })
                .collect(),
            local_msgs: mesh.local_msgs.load(Ordering::Relaxed),
            local_bytes: mesh.local_bytes.load(Ordering::Relaxed),
            retransmits: mesh.retransmits.load(Ordering::Relaxed),
            dups_dropped: mesh.stores.iter().map(|s| s.dups_dropped()).sum(),
            ack_rtt: mesh.ack_rtt.snapshot(),
            ctrl_queue_hwm: mesh
                .queues
                .values()
                .map(|q| q.ctrl_hwm.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0),
        }
    }

    fn diag(&self) -> FabricDiag {
        let mesh = &self.mesh;
        let mut blocked: Vec<_> = mesh.stores.iter().flat_map(|s| s.blocked()).collect();
        blocked.sort_by_key(|b| std::cmp::Reverse(b.waited));
        let queues = mesh
            .queues
            .iter()
            .filter_map(|(&(f, t, l), q)| {
                let depth = q.depth();
                (depth > 0).then_some(QueueDiag {
                    from_node: f,
                    to_node: t,
                    lane: l,
                    depth,
                })
            })
            .collect();
        let last = mesh.last_activity.load(Ordering::Relaxed);
        FabricDiag {
            blocked,
            queues,
            dead_lanes: mesh.dead_lanes(),
            last_wire_activity: (last > 0).then(|| {
                let now = mesh.started.elapsed().as_nanos() as u64;
                Duration::from_nanos(now.saturating_sub(last))
            }),
        }
    }

    fn drain_errors(&self) -> Vec<FabricError> {
        self.mesh
            .errors
            .lock()
            .map(|mut g| std::mem::take(&mut *g))
            .unwrap_or_default()
    }

    fn kill_lane(&self, lane: usize) -> bool {
        let mesh = &self.mesh;
        if lane >= mesh.cfg.lanes {
            return false;
        }
        // The conns lock serializes concurrent kills (and repairs) so
        // two kills cannot race past the last-survivor check.
        let Ok(conns) = mesh.conns.lock() else {
            return false;
        };
        if mesh.killed[lane].load(Ordering::Relaxed) || mesh.alive_lanes().len() <= 1 {
            return false;
        }
        mesh.killed[lane].store(true, Ordering::Relaxed);
        for (&(_, _, l), entry) in conns.iter() {
            if l == lane {
                let _ = entry.out.shutdown(Shutdown::Both);
                let _ = entry.inn.shutdown(Shutdown::Both);
            }
        }
        // Retire the lane's writers; queued eager frames migrate to the
        // survivors via retransmit.
        for (&(_, _, l), q) in mesh.queues.iter() {
            if l == lane {
                q.bump_epoch();
            }
        }
        true
    }

    fn install_chaos(&self, chaos: Arc<WireChaos>) -> bool {
        match self.mesh.chaos.lock() {
            Ok(mut g) => {
                *g = Some(chaos);
                true
            }
            Err(_) => false,
        }
    }

    fn health(&self) -> FabricHealth {
        let mesh = &self.mesh;
        let nodes = mesh.topo.nodes();
        let mut suspected_nodes = Vec::new();
        for a in 0..nodes {
            for b in 0..nodes {
                if a != b && mesh.hb_suspected[mesh.pair(a, b)].load(Ordering::Relaxed) {
                    suspected_nodes.push((a, b));
                }
            }
        }
        let mut dead_peers: Vec<DeadPeer> = mesh
            .dead_peers
            .lock()
            .map(|g| {
                g.iter()
                    .map(|(&peer, &(last_seq, attempts))| DeadPeer {
                        peer,
                        last_seq,
                        attempts,
                    })
                    .collect()
            })
            .unwrap_or_default();
        dead_peers.sort_unstable_by_key(|d| d.peer);
        FabricHealth {
            suspected_nodes,
            dead_peers,
            dead_lanes: mesh.dead_lanes(),
        }
    }
}

impl Drop for TcpFabric {
    fn drop(&mut self) {
        let mesh = &self.mesh;
        mesh.shutdown.store(true, Ordering::Relaxed);
        // Repair and retransmit threads poll the flag.
        if let Some(t) = self.repair.take() {
            let _ = t.join();
        }
        if let Some(t) = self.retransmitter.take() {
            let _ = t.join();
        }
        if let Some(t) = self.heartbeater.take() {
            let _ = t.join();
        }
        // Writers flush what is queued, then exit on `closed`.
        for q in mesh.queues.values() {
            q.close();
        }
        if let Ok(mut g) = mesh.writer_handles.lock() {
            for t in g.drain(..) {
                let _ = t.join();
            }
        }
        // Readers exit on EOF once both directions are shut down.
        if let Ok(conns) = mesh.conns.lock() {
            for e in conns.values() {
                let _ = e.out.shutdown(Shutdown::Both);
                let _ = e.inn.shutdown(Shutdown::Both);
            }
        }
        if let Ok(mut g) = mesh.reader_handles.lock() {
            for t in g.drain(..) {
                let _ = t.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosConfig;

    fn two_nodes(lanes: usize) -> TcpFabric {
        TcpFabric::connect(
            Topology::new(2, 4),
            TcpConfig {
                lanes,
                ..TcpConfig::default()
            },
        )
        .expect("loopback fabric")
    }

    fn fast_rto(lanes: usize, ranks_per_node: usize) -> TcpFabric {
        TcpFabric::connect(
            Topology::new(2, ranks_per_node),
            TcpConfig {
                lanes,
                rto: Duration::from_millis(5),
                ..TcpConfig::default()
            },
        )
        .expect("loopback fabric")
    }

    #[test]
    fn internode_roundtrip() {
        let f = two_nodes(2);
        f.send((0, 4, 9), vec![1, 2, 3]).unwrap();
        assert_eq!(f.recv((0, 4, 9)).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn local_messages_bypass_lanes() {
        let f = two_nodes(2);
        f.send((0, 1, 0), vec![5; 10]).unwrap();
        assert_eq!(f.recv((0, 1, 0)).unwrap(), vec![5; 10]);
        let s = f.stats();
        assert_eq!(s.total_msgs(), 0);
        assert_eq!(s.local_msgs, 1);
        assert_eq!(s.local_bytes, 10);
    }

    #[test]
    fn lanes_are_striped_by_sender_local_rank() {
        let f = two_nodes(4);
        for src in 0..4 {
            f.send((src, 4, 0), vec![src as u8]).unwrap();
        }
        for src in 0..4 {
            assert_eq!(f.recv((src, 4, 0)).unwrap(), vec![src as u8]);
        }
        let s = f.stats();
        assert_eq!(s.total_msgs(), 4);
        for lane in 0..4 {
            assert_eq!(s.lanes[lane].msgs, 1, "one sender per lane");
        }
    }

    #[test]
    fn rendezvous_payload_is_intact() {
        let f = TcpFabric::connect(
            Topology::new(2, 1),
            TcpConfig {
                lanes: 1,
                eager_max: 16,
                ..TcpConfig::default()
            },
        )
        .unwrap();
        let big: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        f.send((0, 1, 3), big.clone()).unwrap();
        assert_eq!(f.recv((0, 1, 3)).unwrap(), big);
    }

    #[test]
    fn drop_joins_progress_threads() {
        let f = two_nodes(3);
        f.send((0, 4, 0), vec![1]).unwrap();
        assert_eq!(f.recv((0, 4, 0)).unwrap(), vec![1]);
        drop(f); // must not hang or panic
    }

    #[test]
    fn recv_timeout_diag_names_backend_lane_and_queue() {
        let f = two_nodes(2);
        let err = f
            .recv_within((1, 4, 5), Duration::from_millis(30))
            .unwrap_err();
        match err {
            FabricError::Timeout(d) => {
                assert_eq!(d.backend, "tcp");
                assert_eq!(d.chan, (1, 4, 5));
                assert_eq!(d.lane, Some(1), "rank 1 stripes onto lane 1 of 2");
                assert_eq!(d.send_queue_depth, Some(0));
                assert!(d.dead_lanes.is_empty());
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn killed_lane_remaps_traffic_and_preserves_fifo() {
        let f = fast_rto(4, 4);
        // Every sender streams to rank 4; kill a lane mid-stream.
        for i in 0..10u8 {
            for src in 0..4usize {
                f.send((src, 4, 1), vec![i, src as u8]).unwrap();
            }
        }
        assert!(f.kill_lane(1));
        assert!(!f.kill_lane(1), "a lane dies once");
        for i in 10..20u8 {
            for src in 0..4usize {
                f.send((src, 4, 1), vec![i, src as u8]).unwrap();
            }
        }
        // FIFO per channel must survive the remap; frames lost in the
        // kill are recovered by retransmit onto surviving lanes.
        for src in 0..4usize {
            for i in 0..20u8 {
                assert_eq!(f.recv((src, 4, 1)).unwrap(), vec![i, src as u8]);
            }
        }
        assert_eq!(f.diag().dead_lanes, vec![1]);
    }

    #[test]
    fn kill_refuses_last_survivor() {
        let f = fast_rto(2, 4);
        assert!(f.kill_lane(0));
        assert!(!f.kill_lane(1), "last lane must survive");
        assert!(!f.kill_lane(7), "no such lane");
        f.send((0, 4, 0), vec![7]).unwrap();
        assert_eq!(f.recv((0, 4, 0)).unwrap(), vec![7]);
    }

    #[test]
    fn dropped_eager_frames_are_recovered_by_retransmit() {
        let f = fast_rto(1, 1);
        let wire = Arc::new(WireChaos::new(&ChaosConfig {
            drop: 0.4,
            seed: 11,
            ..ChaosConfig::default()
        }));
        assert!(f.install_chaos(Arc::clone(&wire)));
        for i in 0..50u8 {
            f.send((0, 1, 2), vec![i]).unwrap();
        }
        for i in 0..50u8 {
            assert_eq!(f.recv((0, 1, 2)).unwrap(), vec![i]);
        }
        assert!(wire.dropped() > 0, "seed 11 must drop something in 50");
        assert!(
            f.stats().retransmits >= wire.dropped(),
            "every dropped frame needs at least one retransmit: {} retransmits, {} dropped",
            f.stats().retransmits,
            wire.dropped(),
        );
        assert!(f.drain_errors().is_empty(), "recovery is not an error");
    }

    #[test]
    fn duplicated_eager_frames_collapse_to_one_delivery() {
        let f = fast_rto(1, 1);
        let wire = Arc::new(WireChaos::new(&ChaosConfig {
            dup: 0.5,
            seed: 3,
            ..ChaosConfig::default()
        }));
        assert!(f.install_chaos(Arc::clone(&wire)));
        for i in 0..40u8 {
            f.send((0, 1, 0), vec![i]).unwrap();
        }
        for i in 0..40u8 {
            assert_eq!(f.recv((0, 1, 0)).unwrap(), vec![i]);
        }
        assert!(wire.dupped() > 0, "seed 3 must duplicate something in 40");
        // No 41st message may exist.
        assert!(matches!(
            f.recv_within((0, 1, 0), Duration::from_millis(50)),
            Err(FabricError::Timeout(_))
        ));
        assert!(f.stats().dups_dropped >= wire.dupped());
    }

    /// Poll `f` until `pred(health)` holds, panicking with the last
    /// snapshot after `budget`.
    fn wait_health(
        f: &TcpFabric,
        budget: Duration,
        what: &str,
        pred: impl Fn(&FabricHealth) -> bool,
    ) {
        let deadline = Instant::now() + budget;
        loop {
            let h = f.health();
            if pred(&h) {
                return;
            }
            assert!(Instant::now() < deadline, "{what}: last health {h:?}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn muted_nodes_suspect_each_other_and_heartbeats_clear_it() {
        // The symmetric false-suspicion partition: both nodes stop
        // beating (muted, not dead), each suspects the other; once beats
        // resume, the first arrival retracts the suspicion on each side.
        let f = TcpFabric::connect(
            Topology::new(2, 1),
            TcpConfig {
                lanes: 1,
                heartbeat: Duration::from_millis(10),
                heartbeat_misses: 3,
                ..TcpConfig::default()
            },
        )
        .expect("loopback fabric");
        f.mute_node(0, true);
        f.mute_node(1, true);
        wait_health(&f, Duration::from_secs(10), "suspicion never formed", |h| {
            h.suspected_nodes.contains(&(0, 1)) && h.suspected_nodes.contains(&(1, 0))
        });
        f.mute_node(0, false);
        f.mute_node(1, false);
        wait_health(
            &f,
            Duration::from_secs(10),
            "suspicion never cleared",
            |h| h.suspected_nodes.is_empty(),
        );
        assert!(f.health().is_clean());
    }

    #[test]
    fn retransmit_exhaustion_is_a_typed_peer_dead_verdict() {
        let f = TcpFabric::connect(
            Topology::new(2, 1),
            TcpConfig {
                lanes: 1,
                rto: Duration::from_millis(2),
                max_retransmits: 3,
                heartbeat: Duration::ZERO,
                ..TcpConfig::default()
            },
        )
        .expect("loopback fabric");
        // Eat every standalone ack: the message is delivered, but the
        // sender's pending entry can never retire and the budget runs out.
        let wire = Arc::new(WireChaos::new(&ChaosConfig {
            ack_drop: 1.0,
            seed: 5,
            ..ChaosConfig::default()
        }));
        assert!(f.install_chaos(Arc::clone(&wire)));
        f.send((0, 1, 7), vec![9]).unwrap();
        assert_eq!(f.recv((0, 1, 7)).unwrap(), vec![9]);
        wait_health(&f, Duration::from_secs(10), "no PeerDead verdict", |h| {
            h.dead_peers.iter().any(|d| d.peer == 1 && d.attempts == 3)
        });
        let errs = f.drain_errors();
        assert!(
            errs.iter()
                .any(|e| matches!(e, FabricError::PeerDead { peer: 1, .. })),
            "typed PeerDead not recorded: {errs:?}"
        );
        // A subsequent receive timeout on a channel from the dead peer
        // names it in the diagnostic.
        let err = f
            .recv_within((1, 0, 9), Duration::from_millis(20))
            .unwrap_err();
        match err {
            FabricError::Timeout(d) => {
                assert_eq!(d.suspected, vec![1], "diag must name the dead peer")
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn broken_connection_reconnects_and_delivery_continues() {
        let f = fast_rto(1, 1);
        f.send((0, 1, 0), vec![1]).unwrap();
        assert_eq!(f.recv((0, 1, 0)).unwrap(), vec![1]);
        assert!(f.break_connection(0, 1, 0));
        assert!(!f.break_connection(0, 1, 9), "no such lane");
        // Traffic sent across the break must still arrive: anything lost
        // mid-repair is recovered by retransmit.
        for i in 0..20u8 {
            f.send((0, 1, 0), vec![10 + i]).unwrap();
        }
        for i in 0..20u8 {
            assert_eq!(f.recv((0, 1, 0)).unwrap(), vec![10 + i]);
        }
        assert!(f.drain_errors().is_empty(), "a repaired break is silent");
    }
}
