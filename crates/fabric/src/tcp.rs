//! The socket backend: real loopback TCP with **k striped lanes** per
//! node pair — the paper's multi-object internode transport made
//! concrete, with loss recovery and lane failover.
//!
//! Topology: every node pair gets `lanes` TCP connections. A message's
//! lane is determined by its *sending rank's local id* striped over the
//! lanes that are still alive, so each of a node's ranks drives its own
//! lane — exactly the paper's mapping of objects to local ranks (Fig. 2)
//! — and a killed lane's traffic degrades onto the survivors.
//!
//! **Progress pool.** All sockets are nonblocking and driven by a small
//! fixed pool of progress threads (default `min(4, cores)`, override
//! `PIPMCOLL_PROGRESS_THREADS`), *not* by a thread pair per connection
//! endpoint. Each endpoint (one direction of one lane connection) is
//! owned by exactly one worker; a worker's loop rotates over its
//! endpoints doing nonblocking work on each:
//!
//! * **write**: refill the endpoint's [`WriteCursor`] from its send
//!   queue (control frames first), then `write_vectored` many pooled
//!   frames — eager payloads, piggybacked cumulative acks, protocol
//!   replies — in one syscall. `WouldBlock` leaves the cursor holding
//!   the torn frame at its resume offset; backpressure propagates to
//!   senders through the bounded queue, never by blocking a worker.
//! * **read**: drain the socket into a [`FrameDecoder`], which
//!   reassembles frames split across reads, and dispatch each decoded
//!   frame (deliver, ack, answer the rendezvous handshake).
//!
//! Wakeups are edge-triggered in userspace: every producer (a sender
//! pushing a frame, a repair request, shutdown) bumps the owning
//! worker's [`WorkSignal`]; after a successful write the worker signals
//! the owner of the *reverse* endpoint, whose socket now has readable
//! bytes — all nodes live in this process, so the writer is always
//! positioned to poke the reader. An idle worker spins briefly
//! ([`Spinner`]), then parks with a bounded timeout, so a missed edge
//! costs milliseconds, not liveness.
//!
//! The former repair, retransmit and heartbeat threads fold into worker
//! 0 as deadline-ordered timer duties: a retransmit scan every `rto/4`,
//! a heartbeat tick every `heartbeat/2`, and repair-queue processing on
//! demand. Total fabric-owned threads are therefore O(pool) — a
//! constant — instead of O(node pairs × lanes), the wall that kept the
//! thread-per-lane design from multiplying lanes the way the paper's
//! Fig. 1 premise requires.
//!
//! Backpressure: each lane's user send queue is bounded; `send` blocks
//! (and counts a stall) while it is full. Protocol replies (CTS, DATA,
//! ACK) travel on an unbounded control queue drained first — frame
//! handling inside a worker never blocks on a full queue, so workers
//! always drain the wire and TCP flow control always eventually
//! releases any blocked sender.
//!
//! Hot-path economics: an eager frame is encoded exactly once into a
//! pooled, refcounted buffer ([`crate::pool::FrameBuf`]) — the send
//! queue, the write cursor, the retransmit pending queue, and any
//! retransmit in flight share refcounts on the same bytes, and the
//! buffer recycles when the last holder drops. After pool warm-up the
//! steady-state eager send path performs no heap allocation at all.
//!
//! Robustness (the PR 3 layer, unchanged in contract):
//!
//! * **Cumulative ack + retransmit** — every eager frame (and every
//!   rendezvous DATA frame) stays in its channel's pending queue until
//!   the receiver's ack *watermark* passes it. Receivers batch acks and
//!   piggyback them on reverse-direction eager frames in the spare
//!   `aux` header field. Worker 0's retransmit scan re-sends unacked
//!   frames with exponential backoff and jitter; receiver sequence
//!   dedup makes re-deliveries idempotent, and every delivery re-raises
//!   the watermark, so a lost ack never wedges the sender. An exhausted
//!   budget becomes a typed [`FabricError::PeerDead`] verdict.
//! * **Reconnect** — a broken socket is reported to worker 0's repair
//!   duty, which re-establishes the connection and hands fresh
//!   endpoints to their owners, deduplicating reports by generation
//!   number. Frames lost in the break are recovered by retransmit.
//! * **Lane failover** — [`Fabric::kill_lane`] severs a lane and future
//!   sends restripe over the survivors; per-channel FIFO survives
//!   because receivers reassemble by sequence number. The last
//!   surviving lane refuses to die.
//! * **Chaos** — when a [`WireChaos`] stream is installed, every eager
//!   frame's first transmission rolls a fate *below* sequence
//!   assignment: a dropped frame looks exactly like wire loss and a
//!   duplicate looks exactly like a spurious retransmit.
//!
//! Node-local messages never touch a socket: one "node" here is a set of
//! ranks sharing an address space, so a self-send is delivered straight
//! into the node's store (counted separately in [`FabricStats`]).

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pipmcoll_model::Topology;

use crate::chaos::{ChaosRng, FrameFate, WireChaos};
use crate::error::{DeadPeer, FabricDiag, FabricError, FabricHealth, FabricResult, QueueDiag};
use crate::pool::{FrameBuf, FramePool, PoolStats, WriteCursor};
use crate::stats::{FabricStats, LaneStats, LatencyHist};
use crate::store::MsgStore;
use crate::timeout::sync_timeout;
use crate::wait::{Spinner, WorkSignal};
use crate::wire::{Frame, FrameDecoder, FrameKind, WireError};
use crate::{ChanKey, Fabric};

/// How a sender's traffic maps onto the k lanes of a node pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LanePolicy {
    /// The paper's mapping (Fig. 2): each sending rank pins to one lane
    /// (`local_of(src)` modulo the surviving lanes), so a node's ranks
    /// drive distinct lanes and a lone transfer uses one socket.
    #[default]
    Modulo,
    /// Träff's 1/k decomposition (arXiv:1910.13373): a message at or
    /// above [`TcpConfig::stripe_min`] is split into per-lane segments
    /// scattered round-robin over every surviving lane, so one large
    /// transfer drives k sockets — and, when each segment fits
    /// [`TcpConfig::eager_max`], skips the rendezvous round trip that
    /// the whole message would have paid. Smaller messages keep the
    /// allocation-free modulo fast path.
    Stripe,
}

impl LanePolicy {
    /// Parse the `PIPMCOLL_LANE_POLICY` spelling.
    pub fn parse(s: &str) -> Option<LanePolicy> {
        match s.trim() {
            "modulo" => Some(LanePolicy::Modulo),
            "stripe" => Some(LanePolicy::Stripe),
            _ => None,
        }
    }
}

/// Tuning knobs for [`TcpFabric`].
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Striped connections per node pair (the paper's object count k).
    pub lanes: usize,
    /// How messages map onto lanes. Default from `PIPMCOLL_LANE_POLICY`
    /// (`modulo`).
    pub lane_policy: LanePolicy,
    /// Smallest payload the stripe policy splits into segments; smaller
    /// messages stay on the modulo fast path so the small-message rate
    /// is untouched. Irrelevant under [`LanePolicy::Modulo`].
    pub stripe_min: usize,
    /// Largest payload sent eagerly; above this the rendezvous handshake
    /// (RTS/CTS/DATA) is used.
    pub eager_max: usize,
    /// Bounded user send window (in messages) per directed node pair,
    /// split evenly across its lanes (each lane queue gets at least 1
    /// slot). A per-pair budget keeps the total in-flight backlog —
    /// and with it ack latency — independent of the lane count, instead
    /// of multiplying the window by k.
    pub queue_cap: usize,
    /// Base retransmit timeout: how long an eager frame may stay unacked
    /// before its first re-send (doubles per attempt, jittered).
    pub rto: Duration,
    /// Re-send budget per eager frame; exhausting it records a
    /// [`FabricError::PeerDead`] verdict against the receiver.
    pub max_retransmits: u32,
    /// Heartbeat sideband interval per node pair: a pair that has sent
    /// nothing for this long gets a standalone [`FrameKind::Heartbeat`]
    /// frame (busy pairs piggyback liveness on their regular traffic —
    /// any frame arrival counts as a beat). [`Duration::ZERO`] disables
    /// the sideband. Default from `PIPMCOLL_HEARTBEAT_MS` (250 ms).
    pub heartbeat: Duration,
    /// Missed-beat budget: a node silent for `heartbeat * misses` is
    /// suspected dead (cleared the instant any frame arrives from it).
    pub heartbeat_misses: u32,
    /// Progress-pool size; `0` means auto (`min(4, cores)`). The pool is
    /// additionally capped at the endpoint count — a fabric never spawns
    /// a worker with nothing to drive. Default from
    /// `PIPMCOLL_PROGRESS_THREADS` (absent/0 = auto).
    pub progress_threads: usize,
    /// Gray-failure brownout evaluation window. Every window, worker 0
    /// scores each lane from its retransmit delta and ack-RTT p99; an
    /// over-threshold lane is *demoted* (excluded from lane selection,
    /// reported in [`FabricHealth::browned_lanes`]) but not killed, and
    /// recovery probes restore it once frames cross it again.
    /// [`Duration::ZERO`] disables brownout entirely. Default from
    /// `PIPMCOLL_BROWNOUT_MS` (0 = off).
    pub brownout_window: Duration,
    /// Retransmits blamed on one lane within one window that demote it.
    /// Default from `PIPMCOLL_BROWNOUT_RETRANSMITS` (16).
    pub brownout_retransmits: u64,
    /// Per-lane ack-RTT p99 (milliseconds) that demotes a lane; 0 makes
    /// the score retransmit-only. Default from `PIPMCOLL_BROWNOUT_P99_MS`
    /// (250).
    pub brownout_p99_ms: u64,
}

/// `PIPMCOLL_HEARTBEAT_MS` (0 disables), parsed once. Malformed values
/// fall back to the default — [`crate::env::validate`] rejects them at
/// [`TcpFabric::connect`].
fn env_heartbeat() -> Duration {
    static HB: std::sync::OnceLock<Duration> = std::sync::OnceLock::new();
    *HB.get_or_init(|| Duration::from_millis(crate::env::read_u64_or("PIPMCOLL_HEARTBEAT_MS", 250)))
}

/// `PIPMCOLL_PROGRESS_THREADS` (0 or absent = auto), parsed once; same
/// fallback policy as [`env_heartbeat`].
fn env_progress_threads() -> usize {
    static N: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *N.get_or_init(|| crate::env::read_usize_or("PIPMCOLL_PROGRESS_THREADS", 0))
}

/// `PIPMCOLL_BROWNOUT_MS` (0 disables), parsed once; same fallback
/// policy as [`env_heartbeat`].
fn env_brownout_window() -> Duration {
    static W: std::sync::OnceLock<Duration> = std::sync::OnceLock::new();
    *W.get_or_init(|| Duration::from_millis(crate::env::read_u64_or("PIPMCOLL_BROWNOUT_MS", 0)))
}

/// `PIPMCOLL_BROWNOUT_RETRANSMITS`, parsed once; same fallback policy
/// as [`env_heartbeat`].
fn env_brownout_retransmits() -> u64 {
    static N: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *N.get_or_init(|| crate::env::read_u64_or("PIPMCOLL_BROWNOUT_RETRANSMITS", 16))
}

/// `PIPMCOLL_BROWNOUT_P99_MS` (0 = retransmit-only scoring), parsed
/// once; same fallback policy as [`env_heartbeat`].
fn env_brownout_p99() -> u64 {
    static P: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *P.get_or_init(|| crate::env::read_u64_or("PIPMCOLL_BROWNOUT_P99_MS", 250))
}

/// `PIPMCOLL_LANE_POLICY` (`modulo`/`stripe`), parsed once; same
/// fallback policy as [`env_heartbeat`].
fn env_lane_policy() -> LanePolicy {
    static P: std::sync::OnceLock<LanePolicy> = std::sync::OnceLock::new();
    *P.get_or_init(|| {
        std::env::var("PIPMCOLL_LANE_POLICY")
            .ok()
            .and_then(|v| LanePolicy::parse(&v))
            .unwrap_or_default()
    })
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            lanes: 4,
            lane_policy: env_lane_policy(),
            stripe_min: 8 * 1024,
            eager_max: 64 * 1024,
            queue_cap: 1024,
            rto: Duration::from_millis(25),
            max_retransmits: 8,
            heartbeat: env_heartbeat(),
            heartbeat_misses: 4,
            progress_threads: env_progress_threads(),
            brownout_window: env_brownout_window(),
            brownout_retransmits: env_brownout_retransmits(),
            brownout_p99_ms: env_brownout_p99(),
        }
    }
}

/// Staging budget for one worker *cycle*, shared across its endpoints:
/// each endpoint's per-pass refill target is this divided by the
/// worker's endpoint count (floored at [`STAGE_MIN`]). Budgeting the
/// cycle rather than the endpoint keeps a worker's round-trip time —
/// and therefore ack latency — roughly constant as lanes multiply,
/// instead of growing linearly with endpoints.
const BATCH_MAX: usize = 256 * 1024;

/// Per-endpoint refill floor: enough to fill a `write_vectored` batch
/// of small frames, so heavily-subscribed workers still amortize the
/// queue lock and the syscall over dozens of frames.
const STAGE_MIN: usize = 4 * 1024;

/// Frames per `write_vectored` call (conservative portable IOV cap).
const MAX_IOV: usize = 64;

/// Socket reads one endpoint may take per progress pass before yielding
/// to its siblings (each read fills up to the scratch buffer, 64 KiB) —
/// fairness under a one-sided flood.
const MAX_READS_PER_PASS: usize = 4;

/// `(from_node, to_node, lane)` — one direction of one lane connection.
type LaneKey = (usize, usize, usize);

#[derive(Default)]
struct QueueInner {
    user: VecDeque<FrameBuf>,
    ctrl: VecDeque<FrameBuf>,
    closed: bool,
}

/// Why a bounded push did not complete.
enum PushError {
    /// The queue stayed at capacity for the whole [`sync_timeout`].
    Timeout(Duration),
    /// The queue mutex was poisoned by a panicking thread.
    Poisoned,
}

/// One lane endpoint's send side: bounded user queue + unbounded control
/// queue (drained first). The queue object outlives any one socket: a
/// reconnected connection's fresh endpoint drains the same queue.
struct SendQueue {
    inner: Mutex<QueueInner>,
    cap: usize,
    /// Deepest the unbounded control queue has ever been — the one
    /// queue backpressure cannot bound, so it gets a high-water mark.
    ctrl_hwm: AtomicU64,
    /// Signalled when the user queue drains below capacity.
    can_push: Condvar,
}

impl SendQueue {
    fn new(cap: usize) -> Self {
        SendQueue {
            inner: Mutex::new(QueueInner::default()),
            cap,
            ctrl_hwm: AtomicU64::new(0),
            can_push: Condvar::new(),
        }
    }

    /// Enqueue a user frame, blocking while the queue is at capacity.
    /// Returns whether the caller stalled waiting for space.
    fn push_user(&self, frame: FrameBuf) -> Result<bool, PushError> {
        let start = Instant::now();
        let deadline = start + sync_timeout();
        let mut spinner = Spinner::new();
        let mut g = self.inner.lock().map_err(|_| PushError::Poisoned)?;
        let mut stalled = false;
        while g.user.len() >= self.cap && !g.closed {
            stalled = true;
            let now = Instant::now();
            if now >= deadline {
                return Err(PushError::Timeout(now.saturating_duration_since(start)));
            }
            // The progress pool usually frees a slot within microseconds;
            // spin through that window before paying for a park.
            if spinner.turn() {
                drop(g);
                g = self.inner.lock().map_err(|_| PushError::Poisoned)?;
                continue;
            }
            // Saturating: the deadline may slip into the past between the
            // check above and this subtraction.
            let wait = deadline.saturating_duration_since(now);
            let (guard, _) = self
                .can_push
                .wait_timeout(g, wait)
                .map_err(|_| PushError::Poisoned)?;
            g = guard;
        }
        g.user.push_back(frame);
        Ok(stalled)
    }

    /// Enqueue a protocol frame (CTS/DATA/ACK, retransmits). Never
    /// blocks — this is what keeps the progress pool always able to
    /// drain the wire. Returns `false` only on a poisoned queue.
    fn push_ctrl(&self, frame: FrameBuf) -> bool {
        match self.inner.lock() {
            Ok(mut g) => {
                g.ctrl.push_back(frame);
                let depth = g.ctrl.len() as u64;
                drop(g);
                self.ctrl_hwm.fetch_max(depth, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }

    /// Nonblocking drain into a write cursor (control frames first)
    /// until the cursor stages at least `target` bytes or the queue is
    /// empty. Returns the bytes moved, and collects the identity of
    /// every staged payload frame into `staged` (for the wire-time RTT
    /// stamp). Frees user-queue capacity, waking blocked senders.
    fn pop_into(
        &self,
        cursor: &mut WriteCursor,
        target: usize,
        staged: &mut Vec<(ChanKey, u64)>,
    ) -> usize {
        let Ok(mut g) = self.inner.lock() else {
            return 0;
        };
        let mut moved = 0usize;
        let mut popped_user = false;
        while cursor.remaining_bytes() < target {
            let next = g.ctrl.pop_front().or_else(|| {
                let f = g.user.pop_front();
                popped_user |= f.is_some();
                f
            });
            match next {
                // The queue's refcount moves into the cursor; the pending
                // table (if any) keeps the bytes alive for retransmit.
                Some(f) => {
                    if let Some(id) = Frame::peek_payload_id(&f) {
                        staged.push(id);
                    }
                    moved += f.len();
                    cursor.push(f);
                }
                None => break,
            }
        }
        drop(g);
        if popped_user {
            self.can_push.notify_all();
        }
        moved
    }

    /// Frames queued and not yet staged for the wire.
    fn depth(&self) -> usize {
        self.inner
            .lock()
            .map(|g| g.user.len() + g.ctrl.len())
            .unwrap_or(0)
    }

    fn close(&self) {
        if let Ok(mut g) = self.inner.lock() {
            g.closed = true;
        }
        self.can_push.notify_all();
    }
}

struct LaneCounters {
    msgs: AtomicU64,
    bytes: AtomicU64,
    stalls: AtomicU64,
}

/// A stashed rendezvous payload waiting for the receiver's CTS.
struct RdvMsg {
    chan: ChanKey,
    seq: u64,
    /// Segments the DATA phase will split into (fixed — and the
    /// sequence range reserved — at `send` time, so the stripe decision
    /// cannot drift between RTS and CTS as lanes die).
    segs: usize,
    payload: Vec<u8>,
}

/// A payload frame awaiting the receiver's cumulative-ack watermark
/// (eager frames and rendezvous DATA frames alike).
struct PendingFrame {
    /// This frame's channel sequence number.
    seq: u64,
    /// A refcount on the encoded frame (shared with the send queue and
    /// any retransmit in flight), ready to re-send verbatim.
    buf: FrameBuf,
    /// Re-sends performed so far.
    attempts: u32,
    /// When the next re-send (or the exhaustion verdict) is due.
    next_at: Instant,
    /// First *wire* transmission instant, for ack round-trip
    /// measurement: registration-time until [`Mesh::mark_on_wire`]
    /// re-stamps it as the frame leaves the send queue for its socket.
    first_sent: Instant,
    /// Whether `first_sent` has been re-stamped at wire time.
    on_wire: bool,
    /// The lane this frame was last pushed onto — a retransmit blames
    /// *this* lane's health score (the lane that lost the frame), then
    /// re-routes over the current live set and updates it.
    lane: usize,
}

/// One lane connection between a node pair (keyed `(lo, hi, lane)` with
/// `lo < hi`): the current socket pair and its repair generation.
struct ConnEntry {
    /// Bumped on every successful repair; shared with the connection's
    /// endpoints so a superseded endpoint retires itself, and dedups
    /// break reports.
    gen: Arc<AtomicU64>,
    /// `lo`'s endpoint stream.
    out: TcpStream,
    /// `hi`'s endpoint stream.
    inn: TcpStream,
}

/// A break report from a progress worker to worker 0's repair duty.
struct RepairReq {
    lo: usize,
    hi: usize,
    lane: usize,
    /// The generation the failing endpoint belonged to (stale reports
    /// for an already-repaired connection are dropped).
    gen: u64,
}

/// One direction of one lane connection, as driven by its owning
/// progress worker: the nonblocking stream plus all per-endpoint
/// progress state (resumable write cursor, incremental frame decoder).
struct Endpoint {
    here: usize,
    peer: usize,
    lane: usize,
    /// The repair generation this endpoint belongs to.
    gen: u64,
    /// The connection's live generation; `gen != cur_gen` means a repair
    /// superseded this endpoint and it must retire without touching the
    /// shared send queue again.
    cur_gen: Arc<AtomicU64>,
    stream: TcpStream,
    queue: Arc<SendQueue>,
    decoder: FrameDecoder,
    cursor: WriteCursor,
    /// Frames handled since the last owed-ack flush.
    since_flush: u32,
    /// Scratch for the payload-frame identities staged each refill
    /// (reused across passes; emptied after the wire-time RTT stamp).
    staged: Vec<(ChanKey, u64)>,
}

/// Progress-pool plumbing: endpoint ownership, wakeup signals, the
/// repair queue, and the listener worker 0 repairs through.
struct ProgressShared {
    addr: SocketAddr,
    /// The loopback listener; blocking during initial connect, then
    /// nonblocking for worker 0's repair accepts.
    listener: Mutex<TcpListener>,
    /// Break reports awaiting worker 0.
    repair_q: Mutex<VecDeque<RepairReq>>,
    /// Per-worker hand-off of freshly created endpoints (initial
    /// connect, repair).
    inboxes: Vec<Mutex<Vec<Endpoint>>>,
    /// Per-worker wakeup signals.
    signals: Vec<WorkSignal>,
    /// Endpoint owner map: `(here, peer, lane)` → worker index.
    owners: HashMap<LaneKey, usize>,
    /// Resolved pool size.
    pool_size: usize,
    /// Live worker census (incremented on entry, guard-decremented on
    /// exit) — the observable behind the thread-budget tests. `Arc` so
    /// a probe can outlive the fabric and verify `Drop` joined the pool.
    live: Arc<AtomicUsize>,
}

/// Everything shared between `send`/`recv` callers and the progress
/// pool.
struct Mesh {
    topo: Topology,
    cfg: TcpConfig,
    progress: ProgressShared,
    /// Per-node receive stores.
    stores: Vec<Arc<MsgStore>>,
    /// Send queues keyed by `(from_node, to_node, lane)`; fixed at
    /// construction, shared across reconnects.
    queues: HashMap<LaneKey, Arc<SendQueue>>,
    /// Live connections keyed by `(lo, hi, lane)`.
    conns: Mutex<HashMap<LaneKey, ConnEntry>>,
    /// Unacked payload frames, per channel in sequence order (sequence
    /// numbers only grow, so a cumulative ack is a pop-front prefix and
    /// each deque keeps its allocation across the whole run).
    pending: Mutex<HashMap<ChanKey, VecDeque<PendingFrame>>>,
    /// Ack watermarks owed to peers, keyed by the received channel.
    /// Drained either by a worker's batched standalone-ack flush or by
    /// a reverse-direction eager send that piggybacks the watermark.
    acks_owed: Mutex<HashMap<ChanKey, u64>>,
    /// Cheap gate so the eager send path skips the `acks_owed` lock
    /// entirely when nothing is owed (the common case).
    owed_len: AtomicUsize,
    /// Pooled frame buffers shared by every encode on this fabric.
    pool: FramePool,
    /// Round-trip from first transmission to the covering ack.
    ack_rtt: LatencyHist,
    /// Inbound frames discarded on CRC-32C mismatch, summed over every
    /// endpoint's decoder.
    corrupt_frames: AtomicU64,
    /// Retransmits blamed per lane (the lane that lost the frame, not
    /// the lane the retry rides) — one brownout-score input.
    lane_retransmits: Vec<AtomicU64>,
    /// Per-lane ack round-trip histograms — the other brownout input.
    lane_rtt: Vec<LatencyHist>,
    /// Per-lane brownout flags: a browned lane is excluded from lane
    /// selection (gray failure demotion) but its endpoints stay up so
    /// probes — and restoration — remain possible.
    browned: Vec<AtomicBool>,
    /// Nanoseconds (since `started`) each lane was last demoted; a
    /// frame heard on the lane *after* this instant is the recovery
    /// evidence that restores it.
    browned_since: Vec<AtomicU64>,
    /// Nanoseconds (since `started`) a frame was last decoded on each
    /// lane, in either direction; 0 = never.
    lane_heard: Vec<AtomicU64>,
    /// Failures recorded by progress workers, drained by the runtime.
    errors: Mutex<Vec<FabricError>>,
    /// Per-lane kill flags; a killed lane is never repaired.
    killed: Vec<AtomicBool>,
    shutdown: AtomicBool,
    /// Frame-level fault stream, when a chaos wrapper installed one.
    chaos: Mutex<Option<Arc<WireChaos>>>,
    /// Lock-free "is chaos installed?" gate: the send path, every
    /// control-frame push and the ack flush consult chaos, and taking
    /// the mutex just to find `None` measurably serialized concurrent
    /// lane workers on the no-fault hot path.
    chaos_installed: AtomicBool,
    /// Next send sequence per channel.
    seqs: Mutex<HashMap<ChanKey, u64>>,
    /// Rendezvous payloads stashed until the receiver grants CTS.
    rdv_stash: Mutex<HashMap<u64, RdvMsg>>,
    next_rdv: AtomicU64,
    retransmits: AtomicU64,
    /// Messages the stripe policy split into per-lane segments.
    striped_msgs: AtomicU64,
    lane_ctrs: Vec<LaneCounters>,
    local_msgs: AtomicU64,
    local_bytes: AtomicU64,
    /// Construction instant; `last_activity` is nanoseconds since this.
    started: Instant,
    /// Nanoseconds (since `started`) of the last frame crossing the wire
    /// in either direction; 0 = never.
    last_activity: AtomicU64,
    /// Nanoseconds (since `started`) node `a` last heard *anything* from
    /// node `b`, flattened `a * nodes + b`; 0 = never (treated as
    /// construction time, since the heartbeat sideband starts at once).
    last_heard: Vec<AtomicU64>,
    /// Nanoseconds node `a` last sent anything to node `b` (same
    /// layout). The send path refreshes this, which is what makes busy
    /// pairs' liveness ride piggyback — the heartbeat duty only emits
    /// a standalone beat when this goes stale.
    last_sent: Vec<AtomicU64>,
    /// Directed suspicion flags (`a` suspects `b`), same layout. Set by
    /// the heartbeat duty past the miss budget, cleared by any frame
    /// arrival from `b`.
    hb_suspected: Vec<AtomicBool>,
    /// Test hook: a muted node's standalone beats are suppressed, so its
    /// peers' suspicion machinery can be exercised without killing real
    /// rank threads.
    muted: Vec<AtomicBool>,
    /// Ranks with a retransmit-exhaustion death verdict:
    /// rank → (last unacked seq, attempts).
    dead_peers: Mutex<HashMap<usize, (u64, u32)>>,
}

impl Mesh {
    fn touch(&self) {
        self.touch_at(self.now_nanos());
    }

    fn touch_at(&self, nanos: u64) {
        self.last_activity.store(nanos, Ordering::Relaxed);
    }

    fn now_nanos(&self) -> u64 {
        (self.started.elapsed().as_nanos() as u64).max(1)
    }

    /// The installed chaos stream, without touching the mutex in the
    /// common uninstalled case.
    fn chaos(&self) -> Option<Arc<WireChaos>> {
        if !self.chaos_installed.load(Ordering::Acquire) {
            return None;
        }
        self.chaos.lock().ok().and_then(|g| g.clone())
    }

    fn pair(&self, a: usize, b: usize) -> usize {
        a * self.topo.nodes() + b
    }

    /// Wake the worker that owns endpoint `(from, to, lane)` — its send
    /// queue or its socket just gained work.
    fn notify_owner(&self, from: usize, to: usize, lane: usize) {
        if let Some(&w) = self.progress.owners.get(&(from, to, lane)) {
            self.progress.signals[w].notify();
        }
    }

    /// Push a control frame onto `(from, to, lane)`'s queue and wake the
    /// owning worker. Returns `false` if the queue is missing/poisoned.
    ///
    /// This is the single choke point every control path funnels
    /// through — acks, CTS/DATA replies, retransmits, heartbeats — so a
    /// chaos link fault or partition is consulted *here*: a partition
    /// that spared retransmits or heartbeats would not be a partition.
    /// A cut frame is swallowed (counted, not errored), exactly like a
    /// wire that ate it.
    fn push_ctrl_to(&self, from: usize, to: usize, lane: usize, buf: FrameBuf) -> bool {
        if let Some(c) = self.chaos() {
            if c.cut(from, to) {
                c.note_cut();
                return true;
            }
        }
        match self.queues.get(&(from, to, lane)) {
            Some(q) => {
                let ok = q.push_ctrl(buf);
                if ok {
                    self.notify_owner(from, to, lane);
                }
                ok
            }
            None => false,
        }
    }

    /// Node `here` heard a frame from node `peer`: refresh the beat and
    /// retract any suspicion — arrival is proof of life, which is what
    /// resolves a symmetric false-suspicion partition (both sides keep
    /// beating, both sides clear).
    /// A frame arrived from `peer` — proof of life. The clock read is
    /// hoisted to the caller: the frame decode loop stamps activity,
    /// peer liveness and lane liveness from ONE `Instant::now()` per
    /// frame (clock reads are tens to hundreds of ns on virtualized
    /// hosts, and three per frame showed up on the 64B message-rate
    /// sweep).
    fn note_heard_at(&self, here: usize, peer: usize, nanos: u64) {
        let idx = self.pair(here, peer);
        self.last_heard[idx].store(nanos, Ordering::Relaxed);
        self.hb_suspected[idx].store(false, Ordering::Relaxed);
    }

    fn note_sent(&self, here: usize, peer: usize) {
        self.last_sent[self.pair(here, peer)].store(self.now_nanos(), Ordering::Relaxed);
    }

    /// A frame was decoded on `lane` — the arrival evidence the
    /// brownout duty's restore check reads. Caller supplies the
    /// timestamp (see [`Mesh::note_heard_at`]).
    fn note_lane_heard_at(&self, lane: usize, nanos: u64) {
        if let Some(a) = self.lane_heard.get(lane) {
            a.store(nanos, Ordering::Relaxed);
        }
    }

    /// Whether `lane` should carry fresh traffic: neither killed nor
    /// brownout-demoted.
    fn lane_usable(&self, lane: usize) -> bool {
        !self.killed[lane].load(Ordering::Relaxed) && !self.browned[lane].load(Ordering::Relaxed)
    }

    /// Lanes currently demoted by the brownout duty (killed lanes are
    /// reported as dead, not browned, even if they browned first).
    fn browned_lanes(&self) -> Vec<usize> {
        (0..self.cfg.lanes)
            .filter(|&l| {
                self.browned[l].load(Ordering::Relaxed) && !self.killed[l].load(Ordering::Relaxed)
            })
            .collect()
    }

    /// Record a retransmit-exhaustion death verdict against `peer`.
    fn record_dead_peer(&self, peer: usize, last_seq: u64, attempts: u32) {
        if let Ok(mut g) = self.dead_peers.lock() {
            let e = g.entry(peer).or_insert((last_seq, attempts));
            if last_seq >= e.0 {
                *e = (last_seq, attempts.max(e.1));
            }
        }
    }

    /// Ranks this endpoint's local evidence says are dead, as relevant
    /// to a receive on `chan` timing out: the sender if its node's
    /// heartbeat went silent, plus every retransmit-exhausted peer.
    fn suspects_for(&self, chan: ChanKey) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .dead_peers
            .lock()
            .map(|g| g.keys().copied().collect())
            .unwrap_or_default();
        let (src, dst, _) = chan;
        if self.topo.node_of(src) != self.topo.node_of(dst) {
            let idx = self.pair(self.topo.node_of(dst), self.topo.node_of(src));
            if self.hb_suspected[idx].load(Ordering::Relaxed) {
                out.push(src);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn record(&self, e: FabricError) {
        if let Ok(mut g) = self.errors.lock() {
            g.push(e);
        }
    }

    fn dead_lanes(&self) -> Vec<usize> {
        (0..self.cfg.lanes)
            .filter(|&l| self.killed[l].load(Ordering::Relaxed))
            .collect()
    }

    fn alive_lanes(&self) -> Vec<usize> {
        (0..self.cfg.lanes)
            .filter(|&l| !self.killed[l].load(Ordering::Relaxed))
            .collect()
    }

    /// The lane a sending rank nominally stripes onto with every lane
    /// alive — what a failure diagnostic names when none survive.
    fn nominal_lane(&self, src: usize) -> usize {
        self.topo.local_of(src) % self.cfg.lanes
    }

    /// The lane a sending rank's traffic is striped onto right now: its
    /// local id modulo the *surviving* lanes, so killed lanes degrade
    /// onto the rest. `None` only if every lane is dead. Allocation-free
    /// — this sits on the eager send path.
    fn effective_lane(&self, src: usize) -> Option<usize> {
        self.seg_lane(src, 0)
    }

    /// [`Mesh::effective_lane`] with the no-survivors case as the typed
    /// error — the single helper both the send path and the retransmit
    /// duty report through. (Each used to derive the fallback lane on
    /// its own, so once lanes had died their diagnostics disagreed
    /// about which lane was at fault.)
    fn effective_lane_or_dead(
        &self,
        src: usize,
        detail: impl FnOnce() -> String,
    ) -> Result<usize, FabricError> {
        self.effective_lane(src)
            .ok_or_else(|| FabricError::LaneDead {
                lane: self.nominal_lane(src),
                detail: detail(),
            })
    }

    /// The lane for segment `i` of a striped message from `src`: the
    /// sender's stripe rotated round-robin over the *usable* lanes —
    /// neither killed nor brownout-demoted — so a browned lane sheds
    /// fresh traffic exactly like a dead one (segment 0 is exactly
    /// [`Mesh::effective_lane`], so an unstriped message is the `i == 0`
    /// case). If every survivor is browned the stripe falls back to the
    /// merely-alive set: degraded delivery beats none. Allocation-free —
    /// this sits on the eager send path.
    fn seg_lane(&self, src: usize, i: usize) -> Option<usize> {
        let usable = |l: &usize| self.lane_usable(*l);
        let count = (0..self.cfg.lanes).filter(usable).count();
        if count == self.cfg.lanes {
            // No lane killed or browned — the no-fault common case:
            // plain modulo, no filtered re-scan.
            return Some((self.topo.local_of(src) + i) % count);
        }
        if count > 0 {
            return (0..self.cfg.lanes)
                .filter(usable)
                .nth((self.topo.local_of(src) + i) % count);
        }
        let alive = |l: &usize| !self.killed[*l].load(Ordering::Relaxed);
        let count = (0..self.cfg.lanes).filter(alive).count();
        if count == 0 {
            return None;
        }
        (0..self.cfg.lanes)
            .filter(alive)
            .nth((self.topo.local_of(src) + i) % count)
    }

    /// How many segments the lane policy splits a `len`-byte payload
    /// into: 1 under [`LanePolicy::Modulo`], below
    /// [`TcpConfig::stripe_min`], or with fewer than two surviving
    /// lanes; otherwise one segment per surviving lane, renormalized so
    /// every segment is non-empty and the count fits the u16 wire
    /// field.
    fn plan_segments(&self, len: usize) -> usize {
        if self.cfg.lane_policy != LanePolicy::Stripe || len < self.cfg.stripe_min.max(1) {
            return 1;
        }
        // Stripe over the lanes fresh traffic can actually use (the
        // same set `seg_lane` routes over): a browned lane must not
        // inflate the segment count it will never carry.
        let usable = (0..self.cfg.lanes).filter(|&l| self.lane_usable(l)).count();
        let routable = if usable > 0 {
            usable
        } else {
            (0..self.cfg.lanes)
                .filter(|&l| !self.killed[l].load(Ordering::Relaxed))
                .count()
        };
        if routable < 2 {
            return 1;
        }
        let want = routable.min(usize::from(u16::MAX));
        // Recompute through the chunk size so exactly this many
        // non-empty chunks come out even when `len` barely clears the
        // threshold.
        let seg_len = len.div_ceil(want).max(1);
        len.div_ceil(seg_len).max(1)
    }

    /// Apply a cumulative ack on `chan`: every pending frame below
    /// `watermark` (the receiver's next-expected sequence) is delivered,
    /// so drop the whole prefix from the retransmit queue. First
    /// transmissions feed the ack round-trip histogram; retransmitted
    /// frames do not (their covering ack is ambiguous).
    fn apply_ack(&self, chan: ChanKey, watermark: u64) {
        let now = Instant::now();
        let Ok(mut pending) = self.pending.lock() else {
            return;
        };
        let Some(q) = pending.get_mut(&chan) else {
            return;
        };
        while q.front().is_some_and(|p| p.seq < watermark) {
            let p = q.pop_front().expect("front just checked");
            if p.attempts == 0 {
                let rtt = now.saturating_duration_since(p.first_sent);
                self.ack_rtt.record(rtt);
                // The same sample attributed to the lane that carried
                // the frame — the brownout duty's RTT input.
                if let Some(h) = self.lane_rtt.get(p.lane) {
                    h.record(rtt);
                }
            }
        }
    }

    /// Register a payload frame (eager or rendezvous DATA) for
    /// retransmit protection and ack round-trip measurement. The deque
    /// stays sequence-sorted: eager frames append (the common case hits
    /// the `rposition` fast path on the last element), while a
    /// rendezvous DATA frame — whose CTS returns after later eager
    /// sequences were already registered — inserts at its ordered slot,
    /// keeping `apply_ack`'s prefix-pop and the head-of-queue retransmit
    /// scan correct.
    fn register_pending(&self, chan: ChanKey, seq: u64, buf: FrameBuf, lane: usize) {
        let now = Instant::now();
        let Ok(mut pending) = self.pending.lock() else {
            return;
        };
        let q = pending.entry(chan).or_default();
        let pos = q
            .iter()
            .rposition(|p| p.seq < seq)
            .map(|i| i + 1)
            .unwrap_or(0);
        q.insert(
            pos,
            PendingFrame {
                seq,
                buf,
                attempts: 0,
                next_at: now + self.cfg.rto,
                first_sent: now,
                on_wire: false,
                lane,
            },
        );
    }

    /// Re-stamp `first_sent` for frames a worker just staged onto their
    /// socket, so ack RTT measures the *wire* round trip. Stamping at
    /// registration instead would fold in time spent queued behind the
    /// lane's own backlog — which grows with the number of lanes and
    /// drowns the transport signal the ramp gates watch.
    fn mark_on_wire(&self, staged: &[(ChanKey, u64)], now: Instant) {
        let Ok(mut pending) = self.pending.lock() else {
            return;
        };
        for &(chan, seq) in staged {
            let Some(q) = pending.get_mut(&chan) else {
                continue;
            };
            // The deque is sequence-sorted (see `register_pending`).
            let Ok(i) = q.binary_search_by_key(&seq, |p| p.seq) else {
                continue;
            };
            let p = &mut q[i];
            // Only the first staging counts; a chaos-duplicated or
            // retransmitted copy must not shrink the measured RTT.
            if !p.on_wire {
                p.on_wire = true;
                p.first_sent = now;
            }
        }
    }

    /// Note that `chan`'s receiver owes its sender a cumulative ack up
    /// to `watermark`. Watermarks only rise; `owed_len` lets the send
    /// path and the workers' flush skip the lock when nothing is owed.
    fn note_owed(&self, chan: ChanKey, watermark: u64) {
        if watermark == 0 {
            // Nothing contiguous delivered yet (an out-of-order frame is
            // merely held) — an ack would carry no information.
            return;
        }
        let Ok(mut owed) = self.acks_owed.lock() else {
            return;
        };
        let e = owed.entry(chan).or_insert(0);
        if watermark > *e {
            *e = watermark;
        }
        self.owed_len.store(owed.len(), Ordering::Relaxed);
    }

    /// Flush every owed cumulative ack as a standalone ACK control
    /// frame. Called by workers when an inbound socket goes quiet (or
    /// every 32 frames under sustained load), so a stream of n eager
    /// frames costs far fewer than n control replies. Gated by
    /// `owed_len`, so the idle case is one relaxed atomic load.
    fn flush_owed_acks(&self) {
        if self.owed_len.load(Ordering::Relaxed) == 0 {
            return;
        }
        let drained: Vec<(ChanKey, u64)> = {
            let Ok(mut owed) = self.acks_owed.lock() else {
                return;
            };
            self.owed_len.store(0, Ordering::Relaxed);
            owed.drain().collect()
        };
        let chaos = self.chaos();
        for (chan, wm) in drained {
            let from = self.topo.node_of(chan.1);
            let to = self.topo.node_of(chan.0);
            if chaos.as_ref().is_some_and(|c| c.ack_fate_for(from, to)) {
                // Ack eaten by the wire (probabilistically, or by a cut
                // edge): the sender retransmits, the receiver dedups,
                // and the duplicate's re-raised watermark is re-owed —
                // nothing wedges.
                continue;
            }
            let Some(lane) = self.effective_lane(chan.1) else {
                continue;
            };
            let ack = Frame {
                kind: FrameKind::Ack,
                src: chan.0 as u32,
                dst: chan.1 as u32,
                tag: chan.2,
                seq: wm,
                aux: 0,
                seg_idx: 0,
                seg_count: 0,
                payload: Vec::new(),
            };
            if !self.push_ctrl_to(from, to, lane, self.pool.encode(&ack)) {
                self.record(FabricError::QueuePoisoned {
                    what: "control send queue",
                });
            }
        }
    }

    /// Process one decoded frame arriving at node `here` from `peer` on
    /// `lane`. Never panics: anything unexpected is recorded and the
    /// worker keeps going.
    fn handle_frame(&self, here: usize, peer: usize, lane: usize, frame: Frame) {
        match frame.kind {
            FrameKind::Eager => {
                // A piggybacked cumulative ack for the reverse channel
                // rides in `aux` (watermark + 1; 0 = none aboard).
                if frame.aux > 0 {
                    let rev = (frame.dst as usize, frame.src as usize, frame.tag);
                    self.apply_ack(rev, frame.aux - 1);
                }
                // Record the owed ack even when dedup drops the frame:
                // the previous ack may be the thing that was lost, and
                // the duplicate's watermark re-covers it.
                let chan = frame.chan();
                let (_, watermark) = self.stores[here].deliver_seg_watermark(
                    chan,
                    frame.seq,
                    frame.seg_idx,
                    frame.seg_count,
                    frame.payload,
                );
                self.note_owed(chan, watermark);
            }
            FrameKind::Data => {
                // Rendezvous DATA participates in the cumulative-ack
                // protocol exactly like an eager frame: the raised
                // watermark retires the sender's pending entry and
                // feeds the ack-RTT histogram — rendezvous-dominated
                // workloads used to record no RTT samples at all.
                let chan = frame.chan();
                let (_, watermark) = self.stores[here].deliver_seg_watermark(
                    chan,
                    frame.seq,
                    frame.seg_idx,
                    frame.seg_count,
                    frame.payload,
                );
                self.note_owed(chan, watermark);
            }
            FrameKind::Rts => {
                // Grant immediately: the store reorders, so there is
                // nothing to reserve here.
                let cts = Frame {
                    kind: FrameKind::Cts,
                    payload: Vec::new(),
                    ..frame
                };
                self.push_ctrl_to(here, peer, lane, self.pool.encode(&cts));
            }
            FrameKind::Cts => {
                let msg = match self.rdv_stash.lock() {
                    Ok(mut g) => g.remove(&frame.aux),
                    Err(_) => {
                        self.record(FabricError::QueuePoisoned {
                            what: "rendezvous stash",
                        });
                        return;
                    }
                };
                // One bad control frame must not kill the lane: record
                // it and keep decoding.
                let Some(msg) = msg else {
                    self.record(FabricError::MalformedFrame {
                        lane,
                        detail: format!(
                            "CTS from node {peer} names unknown rendezvous transfer {}",
                            frame.aux
                        ),
                        expected_version: None,
                        got: None,
                    });
                    return;
                };
                // The DATA phase honours the segment plan fixed at send
                // time: `segs` frames on consecutive sequences, each an
                // ordinary acked/retransmittable frame. Explicit ranges
                // (not `chunks`) so even a degenerate plan still emits
                // exactly `segs` frames.
                let total = msg.payload.len();
                let segs = msg.segs.max(1);
                let seg_len = total.div_ceil(segs).max(1);
                for i in 0..segs {
                    let lo = (i * seg_len).min(total);
                    let hi = ((i + 1) * seg_len).min(total);
                    let data = Frame {
                        kind: FrameKind::Data,
                        src: msg.chan.0 as u32,
                        dst: msg.chan.1 as u32,
                        tag: msg.chan.2,
                        seq: msg.seq + i as u64,
                        aux: frame.aux,
                        seg_idx: i as u16,
                        seg_count: if segs > 1 { segs as u16 } else { 0 },
                        payload: Vec::new(),
                    };
                    let buf = self.pool.encode_seg(&data, &msg.payload[lo..hi]);
                    // Striped DATA scatters like striped eager; a single
                    // DATA keeps the CTS arrival lane.
                    let data_lane = if segs > 1 {
                        self.seg_lane(msg.chan.0, i).unwrap_or(lane)
                    } else {
                        lane
                    };
                    // Retransmit-protect the DATA before it can be lost
                    // — this is what makes a rendezvous transfer ack'd,
                    // measured, and recoverable.
                    self.register_pending(msg.chan, msg.seq + i as u64, buf.clone(), data_lane);
                    self.push_ctrl_to(here, peer, data_lane, buf);
                }
            }
            FrameKind::Ack => {
                // `seq` is the receiver's next-expected watermark.
                self.apply_ack(frame.chan(), frame.seq);
            }
            FrameKind::Heartbeat => {
                // Nothing to do: the worker already counted the arrival
                // as a beat (any frame kind does).
            }
        }
    }
}

// ---------------------------------------------------------------------
// Progress pool: worker loop, endpoint stepping, and worker-0 duties.
// ---------------------------------------------------------------------

/// Queue a break report for worker 0's repair duty — unless the socket
/// broke because of shutdown or a deliberate lane kill, which are not
/// repairable.
fn report_break(mesh: &Mesh, ep: &Endpoint) {
    if mesh.shutdown.load(Ordering::Relaxed) || mesh.killed[ep.lane].load(Ordering::Relaxed) {
        return;
    }
    let (lo, hi) = if ep.here < ep.peer {
        (ep.here, ep.peer)
    } else {
        (ep.peer, ep.here)
    };
    if let Ok(mut q) = mesh.progress.repair_q.lock() {
        q.push_back(RepairReq {
            lo,
            hi,
            lane: ep.lane,
            gen: ep.gen,
        });
    }
    mesh.progress.signals[0].notify();
}

/// One nonblocking progress pass over one endpoint: stage queued frames
/// into the cursor, `write_vectored` them out, then drain the socket
/// through the decoder and dispatch every complete frame. Returns
/// `(keep, progressed)` — `keep == false` retires the endpoint (its
/// break, if unexpected, has been reported).
fn endpoint_step(mesh: &Mesh, ep: &mut Endpoint, stage: usize, scratch: &mut [u8]) -> (bool, bool) {
    let mut progressed = false;

    // WRITE: refill the cursor (up to this endpoint's share of the
    // worker's cycle budget), then push as much as the socket takes.
    if ep.cursor.remaining_bytes() < stage
        && ep.queue.pop_into(&mut ep.cursor, stage, &mut ep.staged) > 0
    {
        progressed = true;
    }
    if !ep.staged.is_empty() {
        // The RTT clock starts here — when the frame leaves its queue
        // for the socket — not at registration (see `mark_on_wire`).
        mesh.mark_on_wire(&ep.staged, Instant::now());
        ep.staged.clear();
    }
    let mut wrote = false;
    while !ep.cursor.is_empty() {
        let slices = ep.cursor.io_slices(MAX_IOV);
        match ep.stream.write_vectored(&slices) {
            Ok(0) => {
                report_break(mesh, ep);
                return (false, progressed);
            }
            Ok(n) => {
                ep.cursor.advance(n);
                wrote = true;
                progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                report_break(mesh, ep);
                return (false, progressed);
            }
        }
    }
    if wrote {
        mesh.touch();
        // The endpoint that *reads* what we just wrote is the reverse
        // direction of this connection — all nodes share this process,
        // so poke its owner instead of waiting out a park timeout.
        mesh.notify_owner(ep.peer, ep.here, ep.lane);
    }

    // READ: drain the socket (bounded per pass for fairness), decode,
    // dispatch.
    let mut reads = 0usize;
    loop {
        match ep.stream.read(scratch) {
            Ok(0) => {
                // Peer closed — a break or shutdown.
                report_break(mesh, ep);
                return (false, progressed);
            }
            Ok(n) => {
                progressed = true;
                ep.decoder.feed(&scratch[..n]);
                loop {
                    match ep.decoder.next_frame() {
                        Ok(Some(frame)) => {
                            // Any frame is proof of life for the peer —
                            // and for its lane (brownout restore). One
                            // clock read stamps all three signals.
                            let nanos = mesh.now_nanos();
                            mesh.touch_at(nanos);
                            mesh.note_heard_at(ep.here, ep.peer, nanos);
                            mesh.note_lane_heard_at(ep.lane, nanos);
                            mesh.handle_frame(ep.here, ep.peer, ep.lane, frame);
                            ep.since_flush += 1;
                            // Batch acks: every 32 frames under sustained
                            // load (the quiet-socket flush is below).
                            if ep.since_flush >= 32 {
                                mesh.flush_owed_acks();
                                ep.since_flush = 0;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // A garbled header cannot be resynced on a
                            // byte stream; reconnect instead. (Checksum
                            // failures never land here — the decoder
                            // skips and counts them silently.)
                            let skipped = ep.decoder.take_corrupt();
                            if skipped > 0 {
                                mesh.corrupt_frames.fetch_add(skipped, Ordering::Relaxed);
                            }
                            if !mesh.shutdown.load(Ordering::Relaxed)
                                && !mesh.killed[ep.lane].load(Ordering::Relaxed)
                            {
                                let (expected_version, got) = match e {
                                    WireError::Version { expected, got } => {
                                        (Some(expected), Some(got))
                                    }
                                    _ => (None, None),
                                };
                                mesh.record(FabricError::MalformedFrame {
                                    lane: ep.lane,
                                    detail: format!("unreadable frame from node {}: {e}", ep.peer),
                                    expected_version,
                                    got,
                                });
                            }
                            report_break(mesh, ep);
                            return (false, progressed);
                        }
                    }
                }
                // Fold any checksum-dropped frames into the fabric-wide
                // counter; their payloads come back via retransmit.
                let skipped = ep.decoder.take_corrupt();
                if skipped > 0 {
                    mesh.corrupt_frames.fetch_add(skipped, Ordering::Relaxed);
                }
                reads += 1;
                if reads >= MAX_READS_PER_PASS {
                    // Yield to sibling endpoints; leftover bytes are
                    // picked up next pass (we made progress, so the
                    // worker loops straight back around).
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Socket gone quiet: flush the acks batched above.
                if ep.since_flush > 0 {
                    mesh.flush_owed_acks();
                    ep.since_flush = 0;
                }
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                report_break(mesh, ep);
                return (false, progressed);
            }
        }
    }
    (true, progressed)
}

/// Worker 0's retransmit duty: one scan re-sending unacked frames with
/// exponential backoff + jitter, converting an exhausted budget into a
/// typed [`FabricError::PeerDead`].
fn retransmit_pass(mesh: &Mesh, rng: &mut ChaosRng) {
    let now = Instant::now();
    let mut due: Vec<(ChanKey, usize, FrameBuf)> = Vec::new();
    {
        let Ok(mut pending) = mesh.pending.lock() else {
            mesh.record(FabricError::QueuePoisoned {
                what: "retransmit table",
            });
            return;
        };
        for (&chan, q) in pending.iter_mut() {
            // Only the channel's *head* frame can be the gap the
            // receiver is stuck on — later unacked frames are usually
            // delivered and merely held behind it, so re-sending them
            // would only feed the dedup counter.
            let Some(p) = q.front_mut() else {
                continue;
            };
            if now < p.next_at {
                continue;
            }
            if p.attempts >= mesh.cfg.max_retransmits {
                // The strongest local death verdict the transport can
                // reach: the whole retransmit budget spent with no ack.
                let p = q.pop_front().expect("head just checked");
                mesh.record_dead_peer(chan.1, p.seq, p.attempts);
                mesh.record(FabricError::PeerDead {
                    peer: chan.1,
                    last_seq: p.seq,
                    attempts: p.attempts,
                });
                continue;
            }
            p.attempts += 1;
            let backoff = mesh.cfg.rto * 2u32.saturating_pow(p.attempts).min(64);
            let jittered = backoff.mul_f64(0.75 + 0.5 * rng.unit());
            p.next_at = now + jittered.min(Duration::from_secs(1));
            // Count the attempt *here*, before the frame can reach the
            // wire: once it is pushed the receiver may deliver it and a
            // caller may observe the recovery, so counting after the
            // push makes `stats().retransmits` lag what the fabric
            // demonstrably did (a real test flake).
            mesh.retransmits.fetch_add(1, Ordering::Relaxed);
            // Blame the lane that *lost* the frame (where it last rode)
            // — the brownout health score — then re-route via the
            // current usable-lane stripe, so frames lost on a killed or
            // browned lane migrate to the healthy survivors.
            if let Some(ctr) = mesh.lane_retransmits.get(p.lane) {
                ctr.fetch_add(1, Ordering::Relaxed);
            }
            match mesh.effective_lane(chan.0) {
                Some(lane) => {
                    p.lane = lane;
                    // A refcount on the pooled bytes, not a copy.
                    due.push((chan, lane, p.buf.clone()));
                }
                None => {
                    let seq = p.seq;
                    mesh.record(FabricError::LaneDead {
                        lane: mesh.nominal_lane(chan.0),
                        detail: format!(
                            "no surviving lane to retransmit {} -> {} tag {} seq {seq}",
                            chan.0, chan.1, chan.2
                        ),
                    });
                }
            }
        }
    }
    for (chan, lane, buf) in due {
        let from = mesh.topo.node_of(chan.0);
        let to = mesh.topo.node_of(chan.1);
        mesh.push_ctrl_to(from, to, lane, buf);
    }
}

/// Worker 0's heartbeat duty: one tick of the liveness sideband. Emits
/// a standalone beat for each directed node pair whose outbound traffic
/// has gone quiet for a full interval — busy pairs never see one, their
/// regular frames *are* the beats — and promotes pairs silent past the
/// miss budget to suspected. Suspicion is node-granular and advisory:
/// the runtime's agreement protocol decides which *ranks* are dead.
fn heartbeat_pass(mesh: &Mesh) {
    let interval = mesh.cfg.heartbeat;
    let budget = interval * mesh.cfg.heartbeat_misses.max(1);
    let nodes = mesh.topo.nodes();
    let now = mesh.now_nanos();
    for a in 0..nodes {
        for b in 0..nodes {
            if a == b {
                continue;
            }
            let idx = mesh.pair(a, b);
            // Promote silence past the budget to suspicion. An unheard
            // pair (0) is aged from construction.
            let heard = mesh.last_heard[idx].load(Ordering::Relaxed);
            if Duration::from_nanos(now.saturating_sub(heard)) > budget {
                mesh.hb_suspected[idx].store(true, Ordering::Relaxed);
            }
            // Emit a's beat towards b when a→b has been quiet.
            if mesh.muted[a].load(Ordering::Relaxed) {
                continue;
            }
            let sent = mesh.last_sent[idx].load(Ordering::Relaxed);
            if Duration::from_nanos(now.saturating_sub(sent)) < interval {
                continue;
            }
            // Beat over a healthy lane when one exists; a browned lane
            // only carries beats when nothing better survives.
            let Some(lane) = (0..mesh.cfg.lanes)
                .find(|&l| mesh.lane_usable(l))
                .or_else(|| mesh.alive_lanes().first().copied())
            else {
                continue;
            };
            let beat = Frame {
                kind: FrameKind::Heartbeat,
                src: mesh.topo.rank_of(a, 0) as u32,
                dst: mesh.topo.rank_of(b, 0) as u32,
                tag: 0,
                seq: 0,
                aux: 0,
                seg_idx: 0,
                seg_count: 0,
                payload: Vec::new(),
            };
            if mesh.push_ctrl_to(a, b, lane, mesh.pool.encode(&beat)) {
                mesh.note_sent(a, b);
            }
        }
    }
}

/// Worker 0's brownout duty: one evaluation window of the gray-failure
/// detector. Per lane, the health score is the retransmit delta blamed
/// on it this window plus its cumulative ack-RTT p99; an over-threshold
/// lane is *demoted* — excluded from fresh lane selection via the
/// usable-lane filter, reported in [`FabricHealth::browned_lanes`] —
/// but its endpoints stay up. Each window a demoted lane gets a probe
/// heartbeat; the first frame heard on the lane after demotion is the
/// recovery evidence that restores it (and wipes its RTT history, so
/// stale degradation cannot immediately re-demote). Demotion never
/// takes the last usable lane: with nothing healthy left, degraded
/// delivery beats none — that escalation belongs to the fail-stop
/// machinery, not brownout.
fn brownout_pass(mesh: &Mesh, prev: &mut [u64]) {
    let nodes = mesh.topo.nodes();
    let chaos = mesh.chaos();
    for (lane, prev_rtx) in prev.iter_mut().enumerate().take(mesh.cfg.lanes) {
        if mesh.killed[lane].load(Ordering::Relaxed) {
            continue;
        }
        let total = mesh.lane_retransmits[lane].load(Ordering::Relaxed);
        let delta = total.saturating_sub(*prev_rtx);
        *prev_rtx = total;
        if mesh.browned[lane].load(Ordering::Relaxed) {
            let heard = mesh.lane_heard[lane].load(Ordering::Relaxed);
            let since = mesh.browned_since[lane].load(Ordering::Relaxed);
            if heard > since {
                // A frame crossed the lane after demotion: the gray
                // failure lifted. Restore it and forget the degraded
                // RTT samples.
                mesh.browned[lane].store(false, Ordering::Relaxed);
                mesh.lane_rtt[lane].clear();
                continue;
            }
            // Probe: a heartbeat pushed over the browned lane itself
            // (regular traffic avoids it, so nothing else would ever
            // cross it again). The probe rolls the same chaos fate as
            // data — a still-degraded lane eats it and the lane stays
            // demoted.
            if nodes >= 2 {
                let fate = chaos
                    .as_ref()
                    .map_or(FrameFate::Deliver, |c| c.fate_for(0, 1, lane));
                if fate != FrameFate::Drop {
                    let beat = Frame {
                        kind: FrameKind::Heartbeat,
                        src: mesh.topo.rank_of(0, 0) as u32,
                        dst: mesh.topo.rank_of(1, 0) as u32,
                        tag: 0,
                        seq: 0,
                        aux: 0,
                        seg_idx: 0,
                        seg_count: 0,
                        payload: Vec::new(),
                    };
                    mesh.push_ctrl_to(0, 1, lane, mesh.pool.encode(&beat));
                }
            }
            continue;
        }
        let p99_over = mesh.cfg.brownout_p99_ms > 0
            && mesh.lane_rtt[lane]
                .snapshot()
                .p99_us
                .is_some_and(|p99| p99 >= mesh.cfg.brownout_p99_ms.saturating_mul(1000));
        if delta >= mesh.cfg.brownout_retransmits.max(1) || p99_over {
            let usable_others = (0..mesh.cfg.lanes)
                .filter(|&l| l != lane && mesh.lane_usable(l))
                .count();
            if usable_others >= 1 {
                mesh.browned_since[lane].store(mesh.now_nanos(), Ordering::Relaxed);
                mesh.browned[lane].store(true, Ordering::Relaxed);
            }
        }
    }
}

/// Hand a fresh endpoint to its owning worker.
fn deliver_endpoint(mesh: &Mesh, ep: Endpoint) {
    let Some(&w) = mesh.progress.owners.get(&(ep.here, ep.peer, ep.lane)) else {
        return;
    };
    if let Ok(mut inbox) = mesh.progress.inboxes[w].lock() {
        inbox.push(ep);
    }
    mesh.progress.signals[w].notify();
}

/// Establish one fresh loopback connection pair through the (now
/// nonblocking) listener — we are both sides, so worker 0 connects and
/// accepts itself. Returns nodelay'd, nonblocking streams.
fn reconnect_nb(mesh: &Mesh) -> io::Result<(TcpStream, TcpStream)> {
    let listener = mesh
        .progress
        .listener
        .lock()
        .map_err(|_| io::Error::other("listener mutex poisoned"))?;
    let out = TcpStream::connect(mesh.progress.addr)?;
    let deadline = Instant::now() + Duration::from_secs(1);
    let inn = loop {
        match listener.accept() {
            Ok((s, _)) => break s,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "loopback accept timed out during repair",
                    ));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    };
    out.set_nodelay(true)?;
    inn.set_nodelay(true)?;
    out.set_nonblocking(true)?;
    inn.set_nonblocking(true)?;
    Ok((out, inn))
}

/// Repair one reported break: dedup by generation, sever the old
/// sockets, reconnect, and hand fresh endpoints to their owners. On
/// failure the lane is marked dead (unless it is the last survivor) so
/// fresh traffic stops routing onto it.
fn repair_one(mesh: &Mesh, req: RepairReq) {
    if mesh.shutdown.load(Ordering::Relaxed) || mesh.killed[req.lane].load(Ordering::Relaxed) {
        return;
    }
    let Ok(mut conns) = mesh.conns.lock() else {
        return;
    };
    let key = (req.lo, req.hi, req.lane);
    let Some(entry) = conns.get_mut(&key) else {
        return;
    };
    if entry.gen.load(Ordering::Relaxed) != req.gen {
        return; // already repaired
    }
    // Make both old endpoints notice, wherever they are in their step.
    let _ = entry.out.shutdown(Shutdown::Both);
    let _ = entry.inn.shutdown(Shutdown::Both);
    match reconnect_nb(mesh) {
        Ok((out, inn)) => match (out.try_clone(), inn.try_clone()) {
            (Ok(lo_stream), Ok(hi_stream)) => {
                // Bumping the generation retires the superseded
                // endpoints before their replacements can race them for
                // queued frames.
                let new_gen = entry.gen.fetch_add(1, Ordering::Relaxed) + 1;
                entry.out = out;
                entry.inn = inn;
                for (here, peer, stream) in
                    [(req.lo, req.hi, lo_stream), (req.hi, req.lo, hi_stream)]
                {
                    let Some(queue) = mesh.queues.get(&(here, peer, req.lane)).cloned() else {
                        continue;
                    };
                    deliver_endpoint(
                        mesh,
                        Endpoint {
                            here,
                            peer,
                            lane: req.lane,
                            gen: new_gen,
                            cur_gen: Arc::clone(&entry.gen),
                            stream,
                            queue,
                            decoder: FrameDecoder::new(),
                            cursor: WriteCursor::new(),
                            since_flush: 0,
                            staged: Vec::new(),
                        },
                    );
                }
            }
            _ => mesh.record(FabricError::LaneDead {
                lane: req.lane,
                detail: "could not clone repaired streams for endpoints".into(),
            }),
        },
        Err(e) => {
            mesh.record(FabricError::LaneDead {
                lane: req.lane,
                detail: format!(
                    "reconnect between nodes {} and {} failed: {e}",
                    req.lo, req.hi
                ),
            });
            // Stop routing fresh traffic onto a lane we cannot repair —
            // unless it is the last survivor.
            if mesh.alive_lanes().len() > 1 {
                mesh.killed[req.lane].store(true, Ordering::Relaxed);
            }
        }
    }
}

/// Worker 0's repair duty: drain and process the break-report queue.
/// Returns whether anything was repaired (progress).
fn repair_pass(mesh: &Mesh) -> bool {
    let reqs: Vec<RepairReq> = match mesh.progress.repair_q.lock() {
        Ok(mut q) => q.drain(..).collect(),
        Err(_) => return false,
    };
    if reqs.is_empty() {
        return false;
    }
    for req in reqs {
        repair_one(mesh, req);
    }
    true
}

/// The progress-pool worker loop. Every worker drives its owned
/// endpoints; worker 0 additionally runs the retransmit, heartbeat and
/// repair timer duties. Idle workers spin briefly then park on their
/// [`WorkSignal`] with a bounded timeout (worker 0's bounded by its
/// next timer deadline).
fn worker_loop(mesh: Arc<Mesh>, widx: usize) {
    // The census was incremented at spawn time (so a fresh fabric's
    // count is accurate before the OS schedules us); this guard only
    // decrements, on every exit path including panic.
    struct Census<'a>(&'a AtomicUsize);
    impl Drop for Census<'_> {
        fn drop(&mut self) {
            self.0.fetch_sub(1, Ordering::SeqCst);
        }
    }
    let _census = Census(&mesh.progress.live);

    let rt_tick = (mesh.cfg.rto / 4).max(Duration::from_millis(1));
    let hb_enabled = widx == 0 && !mesh.cfg.heartbeat.is_zero();
    let hb_tick = (mesh.cfg.heartbeat / 2).max(Duration::from_millis(1));
    let bw_enabled = widx == 0 && !mesh.cfg.brownout_window.is_zero();
    let bw_tick = mesh.cfg.brownout_window.max(Duration::from_millis(1));
    let mut next_rt = Instant::now() + rt_tick;
    let mut next_hb = Instant::now() + hb_tick;
    let mut next_bw = Instant::now() + bw_tick;
    // Per-lane retransmit totals at the last brownout window boundary.
    let mut bw_prev = vec![0u64; mesh.cfg.lanes];
    // Jitter decorrelates retransmit bursts; a fixed seed keeps runs
    // reproducible.
    let mut rng = ChaosRng::new(0xF0F0_F0F0 ^ widx as u64);
    let mut eps: Vec<Endpoint> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut spinner = Spinner::new();
    loop {
        // Epoch read precedes the work scan: anything enqueued after
        // this line bumps the epoch and cuts the park short.
        let seen = mesh.progress.signals[widx].epoch();
        if let Ok(mut inbox) = mesh.progress.inboxes[widx].lock() {
            eps.append(&mut inbox);
        }
        if mesh.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let mut progressed = false;
        if widx == 0 {
            let now = Instant::now();
            if now >= next_rt {
                retransmit_pass(&mesh, &mut rng);
                next_rt = now + rt_tick;
            }
            if hb_enabled && now >= next_hb {
                heartbeat_pass(&mesh);
                next_hb = now + hb_tick;
            }
            if bw_enabled && now >= next_bw {
                brownout_pass(&mesh, &mut bw_prev);
                next_bw = now + bw_tick;
            }
            progressed |= repair_pass(&mesh);
        }
        // This cycle's per-endpoint staging share: the cycle budget
        // split across the worker's endpoints, so cycle time (and ack
        // RTT) stays flat-ish as lanes multiply.
        let stage = (BATCH_MAX / eps.len().max(1)).max(STAGE_MIN);
        eps.retain_mut(|ep| {
            if mesh.killed[ep.lane].load(Ordering::Relaxed)
                || ep.cur_gen.load(Ordering::Relaxed) != ep.gen
            {
                // Killed lane or superseded by a repair: retire without
                // touching the shared queue again.
                return false;
            }
            let (keep, did) = endpoint_step(&mesh, ep, stage, &mut scratch);
            progressed |= did;
            keep
        });
        if progressed {
            // Flush owed acks once per cycle, not only per-endpoint:
            // with many lanes each endpoint sees a thin slice of the
            // traffic, so a per-endpoint frame counter alone would let
            // watermarks age for a whole cycle's worth of frames and
            // ack RTT would grow with the lane count. `owed_len` makes
            // this a single atomic load when nothing is owed.
            mesh.flush_owed_acks();
            spinner = Spinner::new();
            continue;
        }
        if spinner.turn() {
            continue;
        }
        let cap = if widx == 0 {
            let mut deadline = next_rt;
            if hb_enabled {
                deadline = deadline.min(next_hb);
            }
            if bw_enabled {
                deadline = deadline.min(next_bw);
            }
            deadline
                .saturating_duration_since(Instant::now())
                .min(Duration::from_millis(10))
        } else {
            Duration::from_millis(10)
        };
        mesh.progress.signals[widx].wait(seen, cap);
        spinner = Spinner::new();
    }
}

// ---------------------------------------------------------------------
// Construction and the public Fabric surface.
// ---------------------------------------------------------------------

/// Resolve the progress-pool size for this fabric: the configured (or
/// auto) size, capped at the endpoint count — a single-node fabric
/// spawns no progress threads at all.
fn resolve_pool_size(cfg: &TcpConfig, endpoints: usize) -> usize {
    if endpoints == 0 {
        return 0;
    }
    let want = match cfg.progress_threads {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(4),
        n => n,
    };
    want.min(endpoints).max(1)
}

/// Loopback TCP transport with per-node-pair lane pools, ack-based loss
/// recovery, reconnect, and lane failover — all driven by a fixed-size
/// progress pool over nonblocking sockets.
pub struct TcpFabric {
    mesh: Arc<Mesh>,
    workers: Vec<JoinHandle<()>>,
}

impl TcpFabric {
    /// Build the full lane mesh for `topo` on loopback: `cfg.lanes`
    /// connections per node pair, every socket nonblocking, all driven
    /// by [`resolve_pool_size`] progress threads.
    pub fn connect(topo: Topology, cfg: TcpConfig) -> io::Result<TcpFabric> {
        // Reject malformed PIPMCOLL_* variables here, before any worker
        // thread reads them through a silently-defaulting cache.
        crate::env::validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        assert!(cfg.lanes >= 1, "a fabric needs at least one lane");
        assert!(
            cfg.lane_policy == LanePolicy::Modulo || cfg.stripe_min >= 1,
            "stripe_min 0 would split every message, empty ones included"
        );
        assert!(cfg.queue_cap >= 1, "send queues need capacity");
        assert!(!cfg.rto.is_zero(), "retransmit timeout must be positive");
        let nodes = topo.nodes();
        let stores: Vec<Arc<MsgStore>> =
            (0..nodes).map(|_| Arc::new(MsgStore::new("tcp"))).collect();
        let lane_ctrs: Vec<LaneCounters> = (0..cfg.lanes)
            .map(|_| LaneCounters {
                msgs: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                stalls: AtomicU64::new(0),
            })
            .collect();
        let mut queues = HashMap::new();
        for a in 0..nodes {
            for b in 0..nodes {
                if a == b {
                    continue;
                }
                // `queue_cap` budgets the *pair*, not the lane: see its
                // doc. Integer division may undershoot the budget by up
                // to lanes-1 slots; exactness doesn't matter, the flat
                // total does.
                let per_lane = (cfg.queue_cap / cfg.lanes).max(1);
                for lane in 0..cfg.lanes {
                    queues.insert((a, b, lane), Arc::new(SendQueue::new(per_lane)));
                }
            }
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        // Two endpoints (one per direction) per undirected pair per lane.
        let n_endpoints = nodes * nodes.saturating_sub(1) * cfg.lanes;
        let pool_size = resolve_pool_size(&cfg, n_endpoints);
        // Deterministic endpoint → worker assignment, round-robin over
        // the enumeration order, so load spreads evenly and `send` can
        // wake exactly the right worker.
        let mut owners = HashMap::new();
        if pool_size > 0 {
            let mut eidx = 0usize;
            for a in 0..nodes {
                for b in (a + 1)..nodes {
                    for lane in 0..cfg.lanes {
                        owners.insert((a, b, lane), eidx % pool_size);
                        eidx += 1;
                        owners.insert((b, a, lane), eidx % pool_size);
                        eidx += 1;
                    }
                }
            }
        }
        let mesh = Arc::new(Mesh {
            topo,
            cfg,
            progress: ProgressShared {
                addr,
                listener: Mutex::new(listener),
                repair_q: Mutex::new(VecDeque::new()),
                inboxes: (0..pool_size).map(|_| Mutex::new(Vec::new())).collect(),
                signals: (0..pool_size).map(|_| WorkSignal::new()).collect(),
                owners,
                pool_size,
                live: Arc::new(AtomicUsize::new(0)),
            },
            stores,
            queues,
            conns: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            acks_owed: Mutex::new(HashMap::new()),
            owed_len: AtomicUsize::new(0),
            pool: FramePool::new(),
            ack_rtt: LatencyHist::new(),
            corrupt_frames: AtomicU64::new(0),
            lane_retransmits: (0..cfg.lanes).map(|_| AtomicU64::new(0)).collect(),
            lane_rtt: (0..cfg.lanes).map(|_| LatencyHist::new()).collect(),
            browned: (0..cfg.lanes).map(|_| AtomicBool::new(false)).collect(),
            browned_since: (0..cfg.lanes).map(|_| AtomicU64::new(0)).collect(),
            lane_heard: (0..cfg.lanes).map(|_| AtomicU64::new(0)).collect(),
            errors: Mutex::new(Vec::new()),
            killed: (0..cfg.lanes).map(|_| AtomicBool::new(false)).collect(),
            shutdown: AtomicBool::new(false),
            chaos: Mutex::new(None),
            chaos_installed: AtomicBool::new(false),
            seqs: Mutex::new(HashMap::new()),
            rdv_stash: Mutex::new(HashMap::new()),
            next_rdv: AtomicU64::new(0),
            retransmits: AtomicU64::new(0),
            striped_msgs: AtomicU64::new(0),
            lane_ctrs,
            local_msgs: AtomicU64::new(0),
            local_bytes: AtomicU64::new(0),
            started: Instant::now(),
            last_activity: AtomicU64::new(0),
            last_heard: (0..nodes * nodes).map(|_| AtomicU64::new(0)).collect(),
            last_sent: (0..nodes * nodes).map(|_| AtomicU64::new(0)).collect(),
            hb_suspected: (0..nodes * nodes).map(|_| AtomicBool::new(false)).collect(),
            muted: (0..nodes).map(|_| AtomicBool::new(false)).collect(),
            dead_peers: Mutex::new(HashMap::new()),
        });
        // Loopback connect/accept pairs deterministically: the accept
        // queue is FIFO, we connect one socket at a time, and the
        // listener stays blocking until every initial connection is up.
        {
            let listener = mesh
                .progress
                .listener
                .lock()
                .expect("fresh mutex cannot be poisoned");
            let mut conns = HashMap::new();
            for a in 0..nodes {
                for b in (a + 1)..nodes {
                    for lane in 0..mesh.cfg.lanes {
                        let out = TcpStream::connect(addr)?;
                        let (inn, _) = listener.accept()?;
                        out.set_nodelay(true)?;
                        inn.set_nodelay(true)?;
                        out.set_nonblocking(true)?;
                        inn.set_nonblocking(true)?;
                        let gen = Arc::new(AtomicU64::new(0));
                        for (here, peer, stream) in
                            [(a, b, out.try_clone()?), (b, a, inn.try_clone()?)]
                        {
                            let queue = mesh
                                .queues
                                .get(&(here, peer, lane))
                                .cloned()
                                .expect("queue exists for every directed pair");
                            deliver_endpoint(
                                &mesh,
                                Endpoint {
                                    here,
                                    peer,
                                    lane,
                                    gen: 0,
                                    cur_gen: Arc::clone(&gen),
                                    stream,
                                    queue,
                                    decoder: FrameDecoder::new(),
                                    cursor: WriteCursor::new(),
                                    since_flush: 0,
                                    staged: Vec::new(),
                                },
                            );
                        }
                        conns.insert((a, b, lane), ConnEntry { gen, out, inn });
                    }
                }
            }
            // From here on only worker 0's repair duty accepts.
            listener.set_nonblocking(true)?;
            *mesh.conns.lock().expect("fresh mutex cannot be poisoned") = conns;
        }
        let workers = (0..pool_size)
            .map(|w| {
                // Count the worker before it is scheduled so the census
                // reads `pool_size` the instant `connect` returns; the
                // worker's drop guard is the matching decrement. A
                // failed spawn unwinds the credit itself.
                mesh.progress.live.fetch_add(1, Ordering::SeqCst);
                std::thread::Builder::new()
                    .name(format!("fab-pool-{w}"))
                    .spawn({
                        let mesh = Arc::clone(&mesh);
                        move || worker_loop(mesh, w)
                    })
                    .inspect_err(|_| {
                        mesh.progress.live.fetch_sub(1, Ordering::SeqCst);
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(TcpFabric { mesh, workers })
    }

    /// This backend's configuration.
    pub fn config(&self) -> TcpConfig {
        self.mesh.cfg
    }

    /// Counters of the shared frame-buffer pool (hits/misses/recycles) —
    /// the observable behind the zero-steady-state-allocation claim.
    pub fn pool_stats(&self) -> PoolStats {
        self.mesh.pool.stats()
    }

    /// Resolved progress-pool size: the total number of fabric-owned
    /// threads, independent of node-pair × lane count.
    pub fn progress_thread_count(&self) -> usize {
        self.mesh.progress.pool_size
    }

    /// Progress threads alive right now (the census behind the
    /// thread-budget and clean-shutdown tests).
    pub fn live_progress_threads(&self) -> usize {
        self.mesh.progress.live.load(Ordering::SeqCst)
    }

    /// A census probe that outlives the fabric: reads the number of
    /// live progress threads, and reads 0 once `Drop` has joined the
    /// pool — the observable behind the clean-shutdown test.
    pub fn census_probe(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.mesh.progress.live)
    }

    /// Payload frames registered for retransmit and not yet covered by
    /// an ack watermark — drains to zero once all traffic is acked.
    pub fn pending_frames(&self) -> usize {
        self.mesh
            .pending
            .lock()
            .map(|g| g.values().map(|q| q.len()).sum())
            .unwrap_or(0)
    }

    /// Test hook: suppress (or restore) `node`'s standalone heartbeat
    /// beats, so peers' suspicion machinery can be exercised without
    /// killing rank threads. Regular traffic from the node still counts
    /// as proof of life — exactly the piggybacking contract.
    pub fn mute_node(&self, node: usize, muted: bool) {
        if let Some(m) = self.mesh.muted.get(node) {
            m.store(muted, Ordering::Relaxed);
        }
    }

    /// Test/chaos hook: sever the socket of one lane connection without
    /// marking the lane dead, forcing the repair duty to reconnect it.
    /// Returns `false` if no such connection exists.
    pub fn break_connection(&self, a: usize, b: usize, lane: usize) -> bool {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let Ok(conns) = self.mesh.conns.lock() else {
            return false;
        };
        match conns.get(&(lo, hi, lane)) {
            Some(e) => {
                let _ = e.out.shutdown(Shutdown::Both);
                let _ = e.inn.shutdown(Shutdown::Both);
                true
            }
            None => false,
        }
    }
}

impl Fabric for TcpFabric {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn lanes(&self) -> usize {
        self.mesh.cfg.lanes
    }

    fn send(&self, key: ChanKey, payload: Vec<u8>) -> FabricResult<()> {
        let mesh = &self.mesh;
        let (src, dst, _) = key;
        let node_s = mesh.topo.node_of(src);
        let node_d = mesh.topo.node_of(dst);
        if node_s == node_d {
            // Same address space: no socket, no lane.
            mesh.local_msgs.fetch_add(1, Ordering::Relaxed);
            mesh.local_bytes
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            mesh.stores[node_d].push(key, payload);
            return Ok(());
        }
        // Fix the segment plan before anything else: it decides how many
        // sequence numbers this message consumes *and* whether it goes
        // eager — splitting first can turn a rendezvous-sized message
        // into eager-sized segments, skipping the RTS/CTS round trip the
        // whole message would have paid.
        let segs = mesh.plan_segments(payload.len());
        let seq = {
            let mut g = mesh.seqs.lock().map_err(|_| FabricError::QueuePoisoned {
                what: "sequence table",
            })?;
            let c = g.entry(key).or_insert(0);
            let s = *c;
            // Segments occupy consecutive sequences on the channel, so
            // the receiver's hold-back ordering and cumulative acks see
            // them as ordinary frames.
            *c += segs as u64;
            s
        };
        let lane = mesh.effective_lane_or_dead(src, || "no surviving lane".into())?;
        // Outbound traffic doubles as this node pair's heartbeat.
        mesh.note_sent(node_s, node_d);
        // A message counts once, on its sender's primary lane, however
        // many segments it splits into — stats totals stay message- and
        // payload-exact under both policies.
        let ctrs = &mesh.lane_ctrs[lane];
        ctrs.msgs.fetch_add(1, Ordering::Relaxed);
        ctrs.bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        let seg_len = if segs > 1 {
            payload.len().div_ceil(segs)
        } else {
            payload.len()
        };
        let eager = seg_len <= mesh.cfg.eager_max;
        let chaos = mesh.chaos();
        let push_to = |q: &Arc<SendQueue>, lane: usize, buf: FrameBuf| {
            q.push_user(buf).map_err(|e| match e {
                PushError::Timeout(waited) => FabricError::PeerHung {
                    chan: key,
                    attempts: 0,
                    detail: format!(
                        "send queue on lane {lane} stayed full for {waited:?} — receiver not draining"
                    ),
                },
                PushError::Poisoned => FabricError::QueuePoisoned { what: "send queue" },
            })
        };
        if eager {
            // Piggyback any cumulative ack owed on the reverse channel
            // in the spare `aux` field (watermark + 1; 0 = none). The
            // `owed_len` gate keeps the common no-acks-owed case to one
            // relaxed load. A striped message carries it on segment 0
            // only.
            let mut aux = 0;
            if mesh.owed_len.load(Ordering::Relaxed) > 0 {
                if let Ok(mut owed) = mesh.acks_owed.lock() {
                    if let Some(wm) = owed.remove(&(dst, src, key.2)) {
                        aux = wm + 1;
                        mesh.owed_len.store(owed.len(), Ordering::Relaxed);
                    }
                }
            }
            if segs > 1 {
                mesh.striped_msgs.fetch_add(1, Ordering::Relaxed);
            }
            let mut stalled = false;
            for i in 0..segs {
                let lo = (i * seg_len).min(payload.len());
                let hi = ((i + 1) * seg_len).min(payload.len());
                let seg_seq = seq + i as u64;
                let frame = Frame {
                    kind: FrameKind::Eager,
                    src: src as u32,
                    dst: dst as u32,
                    tag: key.2,
                    seq: seg_seq,
                    aux: if i == 0 { aux } else { 0 },
                    seg_idx: i as u16,
                    seg_count: if segs > 1 { segs as u16 } else { 0 },
                    payload: Vec::new(),
                };
                // The one encode on the eager path: header + payload
                // laid out into a pooled buffer; every holder below is
                // a refcount.
                let buf = mesh.pool.encode_seg(&frame, &payload[lo..hi]);
                // Scatter: segment i rides lane (stripe + i) over the
                // survivors; an unstriped message is the i == 0 case on
                // its usual lane.
                let seg_lane = mesh.seg_lane(src, i).unwrap_or(lane);
                let q = mesh
                    .queues
                    .get(&(node_s, node_d, seg_lane))
                    .ok_or_else(|| FabricError::LaneDead {
                        lane: seg_lane,
                        detail: "no send queue for this node pair".into(),
                    })?;
                // Register for retransmit before the frame can be lost.
                // The pending queue holds a refcount on the same pooled
                // bytes — sequence numbers only grow, so the cumulative
                // ack pops a prefix and the deque keeps its allocation.
                mesh.register_pending(key, seg_seq, buf.clone(), seg_lane);
                // Chaos rolls a fate per segment (cut edge, degraded
                // lane, then the per-class streams): each is an
                // ordinary frame to lose, duplicate, corrupt, recover.
                let fate = chaos
                    .as_ref()
                    .map_or(FrameFate::Deliver, |c| c.fate_for(node_s, node_d, seg_lane));
                let pushed = match fate {
                    // "Lost on the wire": the retransmit duty recovers
                    // it.
                    FrameFate::Drop => false,
                    FrameFate::Dup => {
                        let a = push_to(q, seg_lane, buf.clone())?;
                        let b = push_to(q, seg_lane, buf)?;
                        a || b
                    }
                    FrameFate::Corrupt => {
                        // Line noise: a bit-flipped *copy* goes out
                        // while the pending table keeps the pristine
                        // bytes for the retransmit the receiver's CRC
                        // reject will provoke.
                        let mut copy = mesh.pool.copy_bytes(&buf);
                        if let (Some(c), Some(bytes)) = (chaos.as_ref(), copy.as_mut_slice()) {
                            c.corrupt_bytes(bytes);
                        }
                        push_to(q, seg_lane, copy)?
                    }
                    FrameFate::Deliver => push_to(q, seg_lane, buf)?,
                };
                stalled |= pushed;
                // The frame is queued; wake the worker driving its lane.
                mesh.notify_owner(node_s, node_d, seg_lane);
            }
            if stalled {
                ctrs.stalls.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            let rdv = mesh.next_rdv.fetch_add(1, Ordering::Relaxed);
            mesh.rdv_stash
                .lock()
                .map_err(|_| FabricError::QueuePoisoned {
                    what: "rendezvous stash",
                })?
                .insert(
                    rdv,
                    RdvMsg {
                        chan: key,
                        seq,
                        segs,
                        payload,
                    },
                );
            if segs > 1 {
                mesh.striped_msgs.fetch_add(1, Ordering::Relaxed);
            }
            let rts = Frame {
                kind: FrameKind::Rts,
                src: src as u32,
                dst: dst as u32,
                tag: key.2,
                seq,
                aux: rdv,
                seg_idx: 0,
                seg_count: 0,
                payload: Vec::new(),
            };
            let buf = mesh.pool.encode(&rts);
            let q =
                mesh.queues
                    .get(&(node_s, node_d, lane))
                    .ok_or_else(|| FabricError::LaneDead {
                        lane,
                        detail: "no send queue for this node pair".into(),
                    })?;
            // A cut edge eats the RTS exactly as it would on the wire:
            // the stash entry ages out with the fabric and the transfer
            // surfaces as a timeout — the same observable as a lost
            // handshake.
            if let Some(c) = chaos.as_ref() {
                if c.cut(node_s, node_d) {
                    c.note_cut();
                    return Ok(());
                }
            }
            // The RTS itself is not retransmitted; the DATA frames it
            // eventually provokes are (registered at CTS time). A lost
            // handshake surfaces as a timeout.
            if push_to(q, lane, buf)? {
                ctrs.stalls.fetch_add(1, Ordering::Relaxed);
            }
            // The frame is queued; wake the worker that drives this lane.
            mesh.notify_owner(node_s, node_d, lane);
        }
        Ok(())
    }

    fn recv_within(&self, key: ChanKey, timeout: Duration) -> FabricResult<Vec<u8>> {
        let mesh = &self.mesh;
        let node_d = mesh.topo.node_of(key.1);
        match mesh.stores[node_d].pop_within(key, timeout) {
            Err(FabricError::Timeout(mut d)) => {
                // Enrich the store's channel-level view with the lane
                // and sender-queue state only this backend knows.
                let node_s = mesh.topo.node_of(key.0);
                if node_s != node_d {
                    d.lane = mesh.effective_lane(key.0);
                    d.send_queue_depth = d
                        .lane
                        .and_then(|l| mesh.queues.get(&(node_s, node_d, l)))
                        .map(|q| q.depth());
                }
                d.dead_lanes = mesh.dead_lanes();
                d.suspected = mesh.suspects_for(key);
                Err(FabricError::Timeout(d))
            }
            r => r,
        }
    }

    fn try_recv(&self, key: ChanKey) -> FabricResult<Option<Vec<u8>>> {
        self.mesh.stores[self.mesh.topo.node_of(key.1)].try_pop(key)
    }

    fn reset(&self) {
        for s in &self.mesh.stores {
            s.clear_ready();
        }
    }

    fn stats(&self) -> FabricStats {
        let mesh = &self.mesh;
        FabricStats {
            lanes: mesh
                .lane_ctrs
                .iter()
                .map(|c| LaneStats {
                    msgs: c.msgs.load(Ordering::Relaxed),
                    bytes: c.bytes.load(Ordering::Relaxed),
                    stalls: c.stalls.load(Ordering::Relaxed),
                })
                .collect(),
            local_msgs: mesh.local_msgs.load(Ordering::Relaxed),
            local_bytes: mesh.local_bytes.load(Ordering::Relaxed),
            retransmits: mesh.retransmits.load(Ordering::Relaxed),
            striped_msgs: mesh.striped_msgs.load(Ordering::Relaxed),
            dups_dropped: mesh.stores.iter().map(|s| s.dups_dropped()).sum(),
            corrupt_frames: mesh.corrupt_frames.load(Ordering::Relaxed),
            ack_rtt: mesh.ack_rtt.snapshot(),
            ctrl_queue_hwm: mesh
                .queues
                .values()
                .map(|q| q.ctrl_hwm.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0),
        }
    }

    fn diag(&self) -> FabricDiag {
        let mesh = &self.mesh;
        let mut blocked: Vec<_> = mesh.stores.iter().flat_map(|s| s.blocked()).collect();
        blocked.sort_by_key(|b| std::cmp::Reverse(b.waited));
        let queues = mesh
            .queues
            .iter()
            .filter_map(|(&(f, t, l), q)| {
                let depth = q.depth();
                (depth > 0).then_some(QueueDiag {
                    from_node: f,
                    to_node: t,
                    lane: l,
                    depth,
                })
            })
            .collect();
        let last = mesh.last_activity.load(Ordering::Relaxed);
        FabricDiag {
            blocked,
            queues,
            dead_lanes: mesh.dead_lanes(),
            last_wire_activity: (last > 0).then(|| {
                let now = mesh.started.elapsed().as_nanos() as u64;
                Duration::from_nanos(now.saturating_sub(last))
            }),
        }
    }

    fn drain_errors(&self) -> Vec<FabricError> {
        self.mesh
            .errors
            .lock()
            .map(|mut g| std::mem::take(&mut *g))
            .unwrap_or_default()
    }

    fn kill_lane(&self, lane: usize) -> bool {
        let mesh = &self.mesh;
        if lane >= mesh.cfg.lanes {
            return false;
        }
        // The conns lock serializes concurrent kills (and repairs) so
        // two kills cannot race past the last-survivor check.
        let Ok(conns) = mesh.conns.lock() else {
            return false;
        };
        if mesh.killed[lane].load(Ordering::Relaxed) || mesh.alive_lanes().len() <= 1 {
            return false;
        }
        mesh.killed[lane].store(true, Ordering::Relaxed);
        for (&(_, _, l), entry) in conns.iter() {
            if l == lane {
                let _ = entry.out.shutdown(Shutdown::Both);
                let _ = entry.inn.shutdown(Shutdown::Both);
            }
        }
        // Wake every worker so the killed lane's endpoints retire at
        // once; queued eager frames migrate to the survivors via
        // retransmit.
        for s in &mesh.progress.signals {
            s.notify();
        }
        true
    }

    fn install_chaos(&self, chaos: Arc<WireChaos>) -> bool {
        match self.mesh.chaos.lock() {
            Ok(mut g) => {
                *g = Some(chaos);
                self.mesh.chaos_installed.store(true, Ordering::Release);
                true
            }
            Err(_) => false,
        }
    }

    fn health(&self) -> FabricHealth {
        let mesh = &self.mesh;
        let nodes = mesh.topo.nodes();
        let mut suspected_nodes = Vec::new();
        for a in 0..nodes {
            for b in 0..nodes {
                if a != b && mesh.hb_suspected[mesh.pair(a, b)].load(Ordering::Relaxed) {
                    suspected_nodes.push((a, b));
                }
            }
        }
        let mut dead_peers: Vec<DeadPeer> = mesh
            .dead_peers
            .lock()
            .map(|g| {
                g.iter()
                    .map(|(&peer, &(last_seq, attempts))| DeadPeer {
                        peer,
                        last_seq,
                        attempts,
                    })
                    .collect()
            })
            .unwrap_or_default();
        dead_peers.sort_unstable_by_key(|d| d.peer);
        FabricHealth {
            suspected_nodes,
            dead_peers,
            dead_lanes: mesh.dead_lanes(),
            browned_lanes: mesh.browned_lanes(),
        }
    }
}

impl Drop for TcpFabric {
    fn drop(&mut self) {
        let mesh = &self.mesh;
        mesh.shutdown.store(true, Ordering::Relaxed);
        // Wake blocked senders (queues) and parked workers (signals);
        // workers observe the flag and exit, dropping their endpoints.
        for q in mesh.queues.values() {
            q.close();
        }
        for s in &mesh.progress.signals {
            s.notify();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosConfig;

    fn two_nodes(lanes: usize) -> TcpFabric {
        TcpFabric::connect(
            Topology::new(2, 4),
            TcpConfig {
                lanes,
                ..TcpConfig::default()
            },
        )
        .expect("loopback fabric")
    }

    fn fast_rto(lanes: usize, ranks_per_node: usize) -> TcpFabric {
        TcpFabric::connect(
            Topology::new(2, ranks_per_node),
            TcpConfig {
                lanes,
                rto: Duration::from_millis(5),
                ..TcpConfig::default()
            },
        )
        .expect("loopback fabric")
    }

    #[test]
    fn internode_roundtrip() {
        let f = two_nodes(2);
        f.send((0, 4, 9), vec![1, 2, 3]).unwrap();
        assert_eq!(f.recv((0, 4, 9)).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn local_messages_bypass_lanes() {
        let f = two_nodes(2);
        f.send((0, 1, 0), vec![5; 10]).unwrap();
        assert_eq!(f.recv((0, 1, 0)).unwrap(), vec![5; 10]);
        let s = f.stats();
        assert_eq!(s.total_msgs(), 0);
        assert_eq!(s.local_msgs, 1);
        assert_eq!(s.local_bytes, 10);
    }

    #[test]
    fn lanes_are_striped_by_sender_local_rank() {
        let f = two_nodes(4);
        for src in 0..4 {
            f.send((src, 4, 0), vec![src as u8]).unwrap();
        }
        for src in 0..4 {
            assert_eq!(f.recv((src, 4, 0)).unwrap(), vec![src as u8]);
        }
        let s = f.stats();
        assert_eq!(s.total_msgs(), 4);
        for lane in 0..4 {
            assert_eq!(s.lanes[lane].msgs, 1, "one sender per lane");
        }
    }

    #[test]
    fn rendezvous_payload_is_intact() {
        let f = TcpFabric::connect(
            Topology::new(2, 1),
            TcpConfig {
                lanes: 1,
                eager_max: 16,
                ..TcpConfig::default()
            },
        )
        .unwrap();
        let big: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        f.send((0, 1, 3), big.clone()).unwrap();
        assert_eq!(f.recv((0, 1, 3)).unwrap(), big);
    }

    #[test]
    fn drop_joins_progress_threads() {
        let f = two_nodes(3);
        f.send((0, 4, 0), vec![1]).unwrap();
        assert_eq!(f.recv((0, 4, 0)).unwrap(), vec![1]);
        drop(f); // must not hang or panic
    }

    #[test]
    fn pool_size_is_independent_of_lanes() {
        let narrow = two_nodes(1);
        let wide = two_nodes(8);
        assert!(
            wide.progress_thread_count() <= 4,
            "pool exceeds min(4, cores): {}",
            wide.progress_thread_count()
        );
        assert!(wide.progress_thread_count() >= narrow.progress_thread_count());
        // 8× the lanes may not mean 8× the threads — the whole point.
        assert!(
            wide.progress_thread_count() <= narrow.progress_thread_count() * 4,
            "pool scales with lanes: {} vs {}",
            wide.progress_thread_count(),
            narrow.progress_thread_count()
        );
        assert_eq!(wide.live_progress_threads(), wide.progress_thread_count());
    }

    #[test]
    fn rendezvous_transfers_record_ack_rtt() {
        let f = TcpFabric::connect(
            Topology::new(2, 1),
            TcpConfig {
                lanes: 1,
                eager_max: 16,
                ..TcpConfig::default()
            },
        )
        .unwrap();
        f.send((0, 1, 0), vec![7; 4096]).unwrap();
        assert_eq!(f.recv((0, 1, 0)).unwrap(), vec![7; 4096]);
        // The DATA frame's covering ack must land and be measured.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let s = f.stats().ack_rtt;
            if s.count >= 1 {
                assert!(s.p50_us.is_some(), "samples imply a percentile");
                break;
            }
            assert!(
                Instant::now() < deadline,
                "rendezvous DATA never fed the ack-RTT histogram"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        // And the pending table drains — nothing left unacked.
        let deadline = Instant::now() + Duration::from_secs(10);
        while f.pending_frames() > 0 {
            assert!(Instant::now() < deadline, "pending DATA never retired");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn recv_timeout_diag_names_backend_lane_and_queue() {
        let f = two_nodes(2);
        let err = f
            .recv_within((1, 4, 5), Duration::from_millis(30))
            .unwrap_err();
        match err {
            FabricError::Timeout(d) => {
                assert_eq!(d.backend, "tcp");
                assert_eq!(d.chan, (1, 4, 5));
                assert_eq!(d.lane, Some(1), "rank 1 stripes onto lane 1 of 2");
                assert_eq!(d.send_queue_depth, Some(0));
                assert!(d.dead_lanes.is_empty());
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn killed_lane_remaps_traffic_and_preserves_fifo() {
        let f = fast_rto(4, 4);
        // Every sender streams to rank 4; kill a lane mid-stream.
        for i in 0..10u8 {
            for src in 0..4usize {
                f.send((src, 4, 1), vec![i, src as u8]).unwrap();
            }
        }
        assert!(f.kill_lane(1));
        assert!(!f.kill_lane(1), "a lane dies once");
        for i in 10..20u8 {
            for src in 0..4usize {
                f.send((src, 4, 1), vec![i, src as u8]).unwrap();
            }
        }
        // FIFO per channel must survive the remap; frames lost in the
        // kill are recovered by retransmit onto surviving lanes.
        for src in 0..4usize {
            for i in 0..20u8 {
                assert_eq!(f.recv((src, 4, 1)).unwrap(), vec![i, src as u8]);
            }
        }
        assert_eq!(f.diag().dead_lanes, vec![1]);
    }

    #[test]
    fn kill_refuses_last_survivor() {
        let f = fast_rto(2, 4);
        assert!(f.kill_lane(0));
        assert!(!f.kill_lane(1), "last lane must survive");
        assert!(!f.kill_lane(7), "no such lane");
        f.send((0, 4, 0), vec![7]).unwrap();
        assert_eq!(f.recv((0, 4, 0)).unwrap(), vec![7]);
    }

    #[test]
    fn dropped_eager_frames_are_recovered_by_retransmit() {
        let f = fast_rto(1, 1);
        let wire = Arc::new(WireChaos::new(&ChaosConfig {
            drop: 0.4,
            seed: 11,
            ..ChaosConfig::default()
        }));
        assert!(f.install_chaos(Arc::clone(&wire)));
        for i in 0..50u8 {
            f.send((0, 1, 2), vec![i]).unwrap();
        }
        for i in 0..50u8 {
            assert_eq!(f.recv((0, 1, 2)).unwrap(), vec![i]);
        }
        assert!(wire.dropped() > 0, "seed 11 must drop something in 50");
        assert!(
            f.stats().retransmits >= wire.dropped(),
            "every dropped frame needs at least one retransmit: {} retransmits, {} dropped",
            f.stats().retransmits,
            wire.dropped(),
        );
        assert!(f.drain_errors().is_empty(), "recovery is not an error");
    }

    #[test]
    fn duplicated_eager_frames_collapse_to_one_delivery() {
        let f = fast_rto(1, 1);
        let wire = Arc::new(WireChaos::new(&ChaosConfig {
            dup: 0.5,
            seed: 3,
            ..ChaosConfig::default()
        }));
        assert!(f.install_chaos(Arc::clone(&wire)));
        for i in 0..40u8 {
            f.send((0, 1, 0), vec![i]).unwrap();
        }
        for i in 0..40u8 {
            assert_eq!(f.recv((0, 1, 0)).unwrap(), vec![i]);
        }
        assert!(wire.dupped() > 0, "seed 3 must duplicate something in 40");
        // No 41st message may exist.
        assert!(matches!(
            f.recv_within((0, 1, 0), Duration::from_millis(50)),
            Err(FabricError::Timeout(_))
        ));
        assert!(f.stats().dups_dropped >= wire.dupped());
    }

    /// Poll `f` until `pred(health)` holds, panicking with the last
    /// snapshot after `budget`.
    fn wait_health(
        f: &TcpFabric,
        budget: Duration,
        what: &str,
        pred: impl Fn(&FabricHealth) -> bool,
    ) {
        let deadline = Instant::now() + budget;
        loop {
            let h = f.health();
            if pred(&h) {
                return;
            }
            assert!(Instant::now() < deadline, "{what}: last health {h:?}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn muted_nodes_suspect_each_other_and_heartbeats_clear_it() {
        // The symmetric false-suspicion partition: both nodes stop
        // beating (muted, not dead), each suspects the other; once beats
        // resume, the first arrival retracts the suspicion on each side.
        let f = TcpFabric::connect(
            Topology::new(2, 1),
            TcpConfig {
                lanes: 1,
                heartbeat: Duration::from_millis(10),
                heartbeat_misses: 3,
                ..TcpConfig::default()
            },
        )
        .expect("loopback fabric");
        f.mute_node(0, true);
        f.mute_node(1, true);
        wait_health(&f, Duration::from_secs(10), "suspicion never formed", |h| {
            h.suspected_nodes.contains(&(0, 1)) && h.suspected_nodes.contains(&(1, 0))
        });
        f.mute_node(0, false);
        f.mute_node(1, false);
        wait_health(
            &f,
            Duration::from_secs(10),
            "suspicion never cleared",
            |h| h.suspected_nodes.is_empty(),
        );
        assert!(f.health().is_clean());
    }

    #[test]
    fn retransmit_exhaustion_is_a_typed_peer_dead_verdict() {
        let f = TcpFabric::connect(
            Topology::new(2, 1),
            TcpConfig {
                lanes: 1,
                rto: Duration::from_millis(2),
                max_retransmits: 3,
                heartbeat: Duration::ZERO,
                ..TcpConfig::default()
            },
        )
        .expect("loopback fabric");
        // Eat every standalone ack: the message is delivered, but the
        // sender's pending entry can never retire and the budget runs out.
        let wire = Arc::new(WireChaos::new(&ChaosConfig {
            ack_drop: 1.0,
            seed: 5,
            ..ChaosConfig::default()
        }));
        assert!(f.install_chaos(Arc::clone(&wire)));
        f.send((0, 1, 7), vec![9]).unwrap();
        assert_eq!(f.recv((0, 1, 7)).unwrap(), vec![9]);
        wait_health(&f, Duration::from_secs(10), "no PeerDead verdict", |h| {
            h.dead_peers.iter().any(|d| d.peer == 1 && d.attempts == 3)
        });
        let errs = f.drain_errors();
        assert!(
            errs.iter()
                .any(|e| matches!(e, FabricError::PeerDead { peer: 1, .. })),
            "typed PeerDead not recorded: {errs:?}"
        );
        // A subsequent receive timeout on a channel from the dead peer
        // names it in the diagnostic.
        let err = f
            .recv_within((1, 0, 9), Duration::from_millis(20))
            .unwrap_err();
        match err {
            FabricError::Timeout(d) => {
                assert_eq!(d.suspected, vec![1], "diag must name the dead peer")
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    fn striped(lanes: usize, stripe_min: usize, eager_max: usize) -> TcpFabric {
        TcpFabric::connect(
            Topology::new(2, 4),
            TcpConfig {
                lanes,
                lane_policy: LanePolicy::Stripe,
                stripe_min,
                eager_max,
                rto: Duration::from_millis(5),
                ..TcpConfig::default()
            },
        )
        .expect("loopback fabric")
    }

    #[test]
    fn striped_eager_message_scatters_over_all_lanes() {
        let f = striped(4, 16, 64 * 1024);
        let big: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
        f.send((0, 4, 0), big.clone()).unwrap();
        assert_eq!(f.recv((0, 4, 0)).unwrap(), big);
        let s = f.stats();
        assert_eq!(s.total_msgs(), 1, "a striped message still counts once");
        assert_eq!(s.total_bytes(), 8192);
        assert_eq!(s.striped_msgs, 1);
    }

    #[test]
    fn striping_bypasses_rendezvous_when_segments_fit_eager() {
        // 8 KiB payload, eager_max 4 KiB: whole-message would go
        // rendezvous, but 4 lanes make 2 KiB segments — all eager, so
        // the rendezvous stash is never touched.
        let f = striped(4, 16, 4 * 1024);
        let big: Vec<u8> = (0..8192u32).map(|i| (i % 249) as u8).collect();
        f.send((1, 4, 2), big.clone()).unwrap();
        assert_eq!(f.recv((1, 4, 2)).unwrap(), big);
        assert_eq!(f.stats().striped_msgs, 1);
    }

    #[test]
    fn striped_rendezvous_payload_is_intact() {
        // eager_max 16: even 1/4 segments exceed it, so the transfer
        // takes the RTS/CTS path and DATA itself is striped.
        let f = striped(4, 16, 16);
        let big: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        f.send((0, 4, 3), big.clone()).unwrap();
        assert_eq!(f.recv((0, 4, 3)).unwrap(), big);
        assert_eq!(f.stats().striped_msgs, 1);
    }

    #[test]
    fn small_messages_stay_on_the_modulo_fast_path_under_stripe() {
        let f = striped(4, 1024, 64 * 1024);
        for src in 0..4 {
            f.send((src, 4, 0), vec![src as u8; 8]).unwrap();
        }
        for src in 0..4 {
            assert_eq!(f.recv((src, 4, 0)).unwrap(), vec![src as u8; 8]);
        }
        let s = f.stats();
        assert_eq!(s.striped_msgs, 0, "below stripe_min nothing splits");
        for lane in 0..4 {
            assert_eq!(s.lanes[lane].msgs, 1, "one sender per lane");
        }
    }

    #[test]
    fn striped_fifo_survives_interleaving_and_a_lane_kill() {
        let f = striped(4, 64, 64 * 1024);
        let mk = |i: u8, n: usize| vec![i; n];
        for i in 0..6u8 {
            // Alternate striped (256 B) and unstriped (8 B) messages on
            // one channel; kill a lane mid-stream.
            f.send((0, 4, 1), mk(i, if i % 2 == 0 { 256 } else { 8 }))
                .unwrap();
            if i == 3 {
                assert!(f.kill_lane(2));
            }
        }
        for i in 0..6u8 {
            let want = mk(i, if i % 2 == 0 { 256 } else { 8 });
            assert_eq!(f.recv((0, 4, 1)).unwrap(), want, "message {i}");
        }
    }

    #[test]
    fn striped_eager_recovers_from_chaos_drops() {
        let f = striped(2, 64, 64 * 1024);
        let wire = Arc::new(WireChaos::new(&ChaosConfig {
            drop: 0.3,
            seed: 17,
            ..ChaosConfig::default()
        }));
        assert!(f.install_chaos(Arc::clone(&wire)));
        let msgs: Vec<Vec<u8>> = (0..30u8).map(|i| vec![i; 200]).collect();
        for m in &msgs {
            f.send((0, 4, 5), m.clone()).unwrap();
        }
        for m in &msgs {
            assert_eq!(&f.recv((0, 4, 5)).unwrap(), m);
        }
        assert!(wire.dropped() > 0, "seed 17 must drop something in 60 segs");
        assert!(f.drain_errors().is_empty(), "recovery is not an error");
    }

    #[test]
    fn broken_connection_reconnects_and_delivery_continues() {
        let f = fast_rto(1, 1);
        f.send((0, 1, 0), vec![1]).unwrap();
        assert_eq!(f.recv((0, 1, 0)).unwrap(), vec![1]);
        assert!(f.break_connection(0, 1, 0));
        assert!(!f.break_connection(0, 1, 9), "no such lane");
        // Traffic sent across the break must still arrive: anything lost
        // mid-repair is recovered by retransmit.
        for i in 0..20u8 {
            f.send((0, 1, 0), vec![10 + i]).unwrap();
        }
        for i in 0..20u8 {
            assert_eq!(f.recv((0, 1, 0)).unwrap(), vec![10 + i]);
        }
        assert!(f.drain_errors().is_empty(), "a repaired break is silent");
    }

    /// Poll the health view until `browned_lanes == want` (the brownout
    /// duty runs on worker 0's window clock, not the test's).
    fn wait_browned(f: &TcpFabric, want: &[usize]) -> bool {
        let t0 = Instant::now();
        while t0.elapsed() < Duration::from_secs(5) {
            if f.health().browned_lanes == want {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    #[test]
    fn gray_failing_lane_is_demoted_and_restored_after_the_fault_clears() {
        let f = TcpFabric::connect(
            Topology::new(2, 2),
            TcpConfig {
                lanes: 2,
                rto: Duration::from_millis(5),
                brownout_window: Duration::from_millis(20),
                brownout_retransmits: 2,
                ..TcpConfig::default()
            },
        )
        .expect("loopback fabric");
        let wire = Arc::new(WireChaos::new(&ChaosConfig::default()));
        assert!(f.install_chaos(Arc::clone(&wire)));
        // Gray failure: lane 1 silently eats every frame while its
        // sockets stay connected — the case fail-stop detection cannot
        // see (no error, no disconnect, just loss).
        wire.degrade_lane(1, 1.0);
        // Sender local rank 1 nominally stripes onto lane 1, so every
        // first transmission is eaten; each retransmit attempt blames
        // lane 1 and re-rolls the stripe.
        for i in 0..8u8 {
            f.send((1, 3, 7), vec![i]).unwrap();
        }
        // Two blamed retransmits inside one 20 ms window demote the
        // lane: browned, not dead.
        assert!(
            wait_browned(&f, &[1]),
            "lane 1 never browned: health {:?}",
            f.health().browned_lanes
        );
        assert!(
            f.diag().dead_lanes.is_empty(),
            "browned is a demotion, not a death"
        );
        // The stalled traffic completes: retransmits migrate to the
        // healthy lane once the browned one leaves the usable stripe.
        for i in 0..8u8 {
            assert_eq!(f.recv((1, 3, 7)).unwrap(), vec![i]);
        }
        // Fresh sends from the lane-1 sender also avoid the browned
        // lane while it is demoted.
        f.send((1, 3, 8), vec![0xAB]).unwrap();
        assert_eq!(f.recv((1, 3, 8)).unwrap(), vec![0xAB]);
        assert!(
            f.drain_errors().is_empty(),
            "brownout recovery is not an error"
        );
        // The gray failure lifts; the next window's probe heartbeat
        // crosses the lane and restores it.
        wire.heal_lanes();
        assert!(
            wait_browned(&f, &[]),
            "lane 1 never restored after heal: health {:?}",
            f.health().browned_lanes
        );
    }
}
