//! The socket backend: real loopback TCP with **k striped lanes** per
//! node pair — the paper's multi-object internode transport made
//! concrete.
//!
//! Topology: every node pair gets `lanes` TCP connections. A message's
//! lane is determined by its *sending rank's local id*, so each of a
//! node's ranks drives its own lane — exactly the paper's mapping of
//! objects to local ranks (Fig. 2). Each connection endpoint has two
//! dedicated progress threads:
//!
//! * a **writer** draining that lane's send queue, coalescing queued
//!   frames into large `write` calls (message coalescing amortizes the
//!   per-syscall injection cost);
//! * a **reader** decoding frames (`BufReader`-amortized) and either
//!   delivering payloads into the destination node's message store or
//!   answering the rendezvous handshake.
//!
//! Backpressure: each lane's user send queue is bounded; `send` blocks
//! (and counts a stall) while it is full. Protocol replies (CTS, DATA)
//! travel on an unbounded control queue that writers drain first — reader
//! threads therefore never block on a full queue, which is what makes the
//! writer/reader mesh deadlock-free: readers always drain the wire, so
//! TCP flow control always eventually releases any blocked writer.
//!
//! Node-local messages never touch a socket: one "node" here is a set of
//! ranks sharing an address space, so a self-send is delivered straight
//! into the node's store (counted separately in [`FabricStats`]).

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pipmcoll_model::Topology;

use crate::stats::{FabricStats, LaneStats};
use crate::store::MsgStore;
use crate::timeout::sync_timeout;
use crate::wire::{Frame, FrameKind};
use crate::{ChanKey, Fabric};

/// Tuning knobs for [`TcpFabric`].
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Striped connections per node pair (the paper's object count k).
    pub lanes: usize,
    /// Largest payload sent eagerly; above this the rendezvous handshake
    /// (RTS/CTS/DATA) is used.
    pub eager_max: usize,
    /// Bounded depth (in messages) of each lane's user send queue.
    pub queue_cap: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            lanes: 4,
            eager_max: 64 * 1024,
            queue_cap: 256,
        }
    }
}

/// Writers coalesce queued frames into batches of at most this many bytes
/// per `write` call.
const BATCH_MAX: usize = 256 * 1024;

#[derive(Default)]
struct QueueInner {
    user: VecDeque<Vec<u8>>,
    ctrl: VecDeque<Vec<u8>>,
    closed: bool,
}

/// One lane endpoint's send side: bounded user queue + unbounded control
/// queue (drained first).
struct SendQueue {
    inner: Mutex<QueueInner>,
    cap: usize,
    /// Signalled when the user queue drains below capacity.
    can_push: Condvar,
    /// Signalled when anything is queued (or the queue closes).
    can_pop: Condvar,
}

impl SendQueue {
    fn new(cap: usize) -> Self {
        SendQueue {
            inner: Mutex::new(QueueInner::default()),
            cap,
            can_push: Condvar::new(),
            can_pop: Condvar::new(),
        }
    }

    /// Enqueue a user frame, blocking while the queue is at capacity.
    /// Returns whether the caller stalled waiting for space.
    fn push_user(&self, frame: Vec<u8>) -> bool {
        let deadline = Instant::now() + sync_timeout();
        let mut g = self.inner.lock().unwrap();
        let mut stalled = false;
        while g.user.len() >= self.cap && !g.closed {
            stalled = true;
            let now = Instant::now();
            assert!(
                now < deadline,
                "timeout: fabric send queue stayed full for {:?} — receiver stuck?",
                sync_timeout()
            );
            let (guard, _) = self.can_push.wait_timeout(g, deadline - now).unwrap();
            g = guard;
        }
        g.user.push_back(frame);
        drop(g);
        self.can_pop.notify_one();
        stalled
    }

    /// Enqueue a protocol frame (CTS/DATA). Never blocks — this is what
    /// keeps reader threads always able to drain the wire.
    fn push_ctrl(&self, frame: Vec<u8>) {
        let mut g = self.inner.lock().unwrap();
        g.ctrl.push_back(frame);
        drop(g);
        self.can_pop.notify_one();
    }

    /// Move up to `BATCH_MAX` bytes of queued frames into `buf`
    /// (control frames first). Blocks while empty; returns `false` once
    /// the queue is closed and fully drained.
    fn pop_batch(&self, buf: &mut Vec<u8>) -> bool {
        buf.clear();
        let mut g = self.inner.lock().unwrap();
        loop {
            while buf.len() < BATCH_MAX {
                let next = g.ctrl.pop_front().or_else(|| g.user.pop_front());
                match next {
                    Some(f) => buf.extend_from_slice(&f),
                    None => break,
                }
            }
            if !buf.is_empty() {
                drop(g);
                self.can_push.notify_all();
                return true;
            }
            if g.closed {
                return false;
            }
            g = self.can_pop.wait(g).unwrap();
        }
    }

    fn close(&self) {
        let mut g = self.inner.lock().unwrap();
        g.closed = true;
        drop(g);
        self.can_pop.notify_all();
        self.can_push.notify_all();
    }
}

struct LaneCounters {
    msgs: AtomicU64,
    bytes: AtomicU64,
    stalls: AtomicU64,
}

/// A stashed rendezvous payload waiting for the receiver's CTS.
struct RdvMsg {
    chan: ChanKey,
    seq: u64,
    payload: Vec<u8>,
}

/// Loopback TCP transport with per-node-pair lane pools.
pub struct TcpFabric {
    topo: Topology,
    cfg: TcpConfig,
    /// Per-node receive stores.
    stores: Vec<Arc<MsgStore>>,
    /// Send queues keyed by `(from_node, to_node, lane)`.
    queues: HashMap<(usize, usize, usize), Arc<SendQueue>>,
    /// One handle per connection, for shutdown.
    streams: Vec<TcpStream>,
    writer_threads: Mutex<Vec<JoinHandle<()>>>,
    reader_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Next send sequence per channel.
    seqs: Mutex<HashMap<ChanKey, u64>>,
    /// Rendezvous payloads stashed until the receiver grants CTS.
    rdv_stash: Arc<Mutex<HashMap<u64, RdvMsg>>>,
    next_rdv: AtomicU64,
    lane_ctrs: Arc<Vec<LaneCounters>>,
    local_msgs: AtomicU64,
    local_bytes: AtomicU64,
}

impl TcpFabric {
    /// Build the full lane mesh for `topo` on loopback: `cfg.lanes`
    /// connections per node pair, each with its own writer and reader
    /// progress threads.
    pub fn connect(topo: Topology, cfg: TcpConfig) -> std::io::Result<TcpFabric> {
        assert!(cfg.lanes >= 1, "a fabric needs at least one lane");
        assert!(cfg.queue_cap >= 1, "send queues need capacity");
        let nodes = topo.nodes();
        let stores: Vec<Arc<MsgStore>> =
            (0..nodes).map(|_| Arc::new(MsgStore::new("tcp"))).collect();
        let lane_ctrs: Arc<Vec<LaneCounters>> = Arc::new(
            (0..cfg.lanes)
                .map(|_| LaneCounters {
                    msgs: AtomicU64::new(0),
                    bytes: AtomicU64::new(0),
                    stalls: AtomicU64::new(0),
                })
                .collect(),
        );
        let mut fabric = TcpFabric {
            topo,
            cfg,
            stores,
            queues: HashMap::new(),
            streams: Vec::new(),
            writer_threads: Mutex::new(Vec::new()),
            reader_threads: Mutex::new(Vec::new()),
            seqs: Mutex::new(HashMap::new()),
            rdv_stash: Arc::new(Mutex::new(HashMap::new())),
            next_rdv: AtomicU64::new(0),
            lane_ctrs,
            local_msgs: AtomicU64::new(0),
            local_bytes: AtomicU64::new(0),
        };
        // Loopback connect/accept pairs deterministically: the accept
        // queue is FIFO, and we connect one socket at a time.
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        for a in 0..nodes {
            for b in (a + 1)..nodes {
                for lane in 0..cfg.lanes {
                    let out = TcpStream::connect(addr)?;
                    let (inn, _) = listener.accept()?;
                    out.set_nodelay(true)?;
                    inn.set_nodelay(true)?;
                    fabric.add_endpoint(a, b, lane, out)?;
                    fabric.add_endpoint(b, a, lane, inn)?;
                }
            }
        }
        Ok(fabric)
    }

    /// Register node `here`'s end of the lane `lane` connection to
    /// `peer`: a send queue plus writer and reader threads.
    fn add_endpoint(
        &mut self,
        here: usize,
        peer: usize,
        lane: usize,
        stream: TcpStream,
    ) -> std::io::Result<()> {
        let queue = Arc::new(SendQueue::new(self.cfg.queue_cap));
        self.queues.insert((here, peer, lane), Arc::clone(&queue));

        let mut wstream = stream.try_clone()?;
        let writer = std::thread::Builder::new()
            .name(format!("fab-w {here}->{peer} l{lane}"))
            .spawn(move || {
                let mut batch = Vec::with_capacity(BATCH_MAX);
                while queue.pop_batch(&mut batch) {
                    if wstream.write_all(&batch).is_err() {
                        return; // peer gone; shutdown in progress
                    }
                }
            })
            .expect("spawn fabric writer");

        let store = Arc::clone(&self.stores[here]);
        let reply = Arc::clone(self.queues.get(&(here, peer, lane)).unwrap());
        let stash = Arc::clone(&self.rdv_stash);
        let rstream = stream.try_clone()?;
        let reader = std::thread::Builder::new()
            .name(format!("fab-r {here}<-{peer} l{lane}"))
            .spawn(move || {
                let mut r = BufReader::with_capacity(BATCH_MAX, rstream);
                // Any read error (including clean EOF at shutdown) ends
                // the endpoint; undelivered traffic then trips the
                // receiver's timeout diagnostic rather than hanging.
                while let Ok(frame) = Frame::read_from(&mut r) {
                    match frame.kind {
                        FrameKind::Eager | FrameKind::Data => {
                            store.deliver_seq(frame.chan(), frame.seq, frame.payload);
                        }
                        FrameKind::Rts => {
                            // Grant immediately: the store reorders, so
                            // there is nothing to reserve here.
                            let cts = Frame {
                                kind: FrameKind::Cts,
                                payload: Vec::new(),
                                ..frame
                            };
                            reply.push_ctrl(cts.encode());
                        }
                        FrameKind::Cts => {
                            let msg = stash
                                .lock()
                                .unwrap()
                                .remove(&frame.aux)
                                .expect("CTS for unknown rendezvous transfer");
                            let data = Frame {
                                kind: FrameKind::Data,
                                src: msg.chan.0 as u32,
                                dst: msg.chan.1 as u32,
                                tag: msg.chan.2,
                                seq: msg.seq,
                                aux: frame.aux,
                                payload: msg.payload,
                            };
                            reply.push_ctrl(data.encode());
                        }
                    }
                }
            })
            .expect("spawn fabric reader");

        self.streams.push(stream);
        self.writer_threads.lock().unwrap().push(writer);
        self.reader_threads.lock().unwrap().push(reader);
        Ok(())
    }

    /// The lane a channel is striped onto: the sending rank's local id,
    /// so each of a node's ranks is its own internode object.
    fn lane_of(&self, key: ChanKey) -> usize {
        self.topo.local_of(key.0) % self.cfg.lanes
    }

    /// This backend's configuration.
    pub fn config(&self) -> TcpConfig {
        self.cfg
    }
}

impl Fabric for TcpFabric {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn lanes(&self) -> usize {
        self.cfg.lanes
    }

    fn send(&self, key: ChanKey, payload: Vec<u8>) {
        let (src, dst, _) = key;
        let node_s = self.topo.node_of(src);
        let node_d = self.topo.node_of(dst);
        if node_s == node_d {
            // Same address space: no socket, no lane.
            self.local_msgs.fetch_add(1, Ordering::Relaxed);
            self.local_bytes
                .fetch_add(payload.len() as u64, Ordering::Relaxed);
            self.stores[node_d].push(key, payload);
            return;
        }
        let seq = {
            let mut g = self.seqs.lock().unwrap();
            let c = g.entry(key).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        let lane = self.lane_of(key);
        let ctrs = &self.lane_ctrs[lane];
        ctrs.msgs.fetch_add(1, Ordering::Relaxed);
        ctrs.bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        let frame = if payload.len() <= self.cfg.eager_max {
            Frame {
                kind: FrameKind::Eager,
                src: src as u32,
                dst: dst as u32,
                tag: key.2,
                seq,
                aux: 0,
                payload,
            }
        } else {
            let rdv = self.next_rdv.fetch_add(1, Ordering::Relaxed);
            self.rdv_stash.lock().unwrap().insert(
                rdv,
                RdvMsg {
                    chan: key,
                    seq,
                    payload,
                },
            );
            Frame {
                kind: FrameKind::Rts,
                src: src as u32,
                dst: dst as u32,
                tag: key.2,
                seq,
                aux: rdv,
                payload: Vec::new(),
            }
        };
        let q = self
            .queues
            .get(&(node_s, node_d, lane))
            .expect("lane mesh covers every node pair");
        if q.push_user(frame.encode()) {
            ctrs.stalls.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn recv_within(&self, key: ChanKey, timeout: Duration) -> Vec<u8> {
        let node = self.topo.node_of(key.1);
        self.stores[node].pop_within(key, timeout)
    }

    fn reset(&self) {
        for s in &self.stores {
            s.clear_ready();
        }
    }

    fn stats(&self) -> FabricStats {
        FabricStats {
            lanes: self
                .lane_ctrs
                .iter()
                .map(|c| LaneStats {
                    msgs: c.msgs.load(Ordering::Relaxed),
                    bytes: c.bytes.load(Ordering::Relaxed),
                    stalls: c.stalls.load(Ordering::Relaxed),
                })
                .collect(),
            local_msgs: self.local_msgs.load(Ordering::Relaxed),
            local_bytes: self.local_bytes.load(Ordering::Relaxed),
        }
    }
}

impl Drop for TcpFabric {
    fn drop(&mut self) {
        // Writers flush what is queued, then exit on `closed`.
        for q in self.queues.values() {
            q.close();
        }
        for t in self.writer_threads.lock().unwrap().drain(..) {
            let _ = t.join();
        }
        // Readers exit on EOF once both directions are shut down.
        for s in &self.streams {
            let _ = s.shutdown(Shutdown::Both);
        }
        for t in self.reader_threads.lock().unwrap().drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_nodes(lanes: usize) -> TcpFabric {
        TcpFabric::connect(
            Topology::new(2, 4),
            TcpConfig {
                lanes,
                ..TcpConfig::default()
            },
        )
        .expect("loopback fabric")
    }

    #[test]
    fn internode_roundtrip() {
        let f = two_nodes(2);
        f.send((0, 4, 9), vec![1, 2, 3]);
        assert_eq!(f.recv((0, 4, 9)), vec![1, 2, 3]);
    }

    #[test]
    fn local_messages_bypass_lanes() {
        let f = two_nodes(2);
        f.send((0, 1, 0), vec![5; 10]);
        assert_eq!(f.recv((0, 1, 0)), vec![5; 10]);
        let s = f.stats();
        assert_eq!(s.total_msgs(), 0);
        assert_eq!(s.local_msgs, 1);
        assert_eq!(s.local_bytes, 10);
    }

    #[test]
    fn lanes_are_striped_by_sender_local_rank() {
        let f = two_nodes(4);
        for src in 0..4 {
            f.send((src, 4, 0), vec![src as u8]);
        }
        for src in 0..4 {
            assert_eq!(f.recv((src, 4, 0)), vec![src as u8]);
        }
        let s = f.stats();
        assert_eq!(s.total_msgs(), 4);
        for lane in 0..4 {
            assert_eq!(s.lanes[lane].msgs, 1, "one sender per lane");
        }
    }

    #[test]
    fn rendezvous_payload_is_intact() {
        let f = TcpFabric::connect(
            Topology::new(2, 1),
            TcpConfig {
                lanes: 1,
                eager_max: 16,
                ..TcpConfig::default()
            },
        )
        .unwrap();
        let big: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        f.send((0, 1, 3), big.clone());
        assert_eq!(f.recv((0, 1, 3)), big);
    }

    #[test]
    fn drop_joins_progress_threads() {
        let f = two_nodes(3);
        f.send((0, 4, 0), vec![1]);
        assert_eq!(f.recv((0, 4, 0)), vec![1]);
        drop(f); // must not hang or panic
    }
}
