//! One place to read and parse every `PIPMCOLL_*` tuning variable.
//!
//! The parsing logic used to be copy-pasted across `timeout.rs`,
//! `wait.rs`, `pool.rs`, `tcp.rs` and `chaos.rs`, each copy panicking
//! on a malformed value — and because most of these knobs are first read
//! lazily from a progress or worker thread, a typo in an env var
//! surfaced as a panic deep inside the fabric instead of a readable
//! startup error.
//!
//! The policy now has two halves:
//!
//! * [`validate`] checks **every** known variable and returns a typed
//!   [`EnvError`] naming the variable, the offending value and what was
//!   expected. Fabric constructors ([`crate::TcpFabric::connect`],
//!   [`crate::try_from_env`]) call it, so a bad variable fails fast at
//!   construction with a readable message.
//! * The cached getters ([`crate::sync_timeout`], [`crate::spin_budget`],
//!   `pool_cap`, …) fall back to their documented defaults on a
//!   malformed value instead of panicking — by the time a worker thread
//!   reads them, construction has already validated the environment, so
//!   the fallback only triggers for backends built without a validating
//!   constructor (e.g. a bare `InProcFabric` in a unit test), where a
//!   silent default is preferable to killing a worker.

use std::fmt;
use std::time::Duration;

/// A malformed environment variable, caught at fabric construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnvError {
    /// The variable that failed to parse.
    pub var: &'static str,
    /// Its raw value (lossy for non-unicode).
    pub value: String,
    /// What a valid value looks like.
    pub expected: &'static str,
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}={:?} is malformed: expected {}",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvError {}

impl From<EnvError> for crate::FabricError {
    fn from(e: EnvError) -> Self {
        crate::FabricError::Config {
            var: e.var,
            detail: format!("{:?} is malformed: expected {}", e.value, e.expected),
        }
    }
}

/// Parse a raw string as a `u64`, rejecting empty, garbage and
/// overflowing values with a typed error.
pub fn parse_u64(var: &'static str, raw: &str, expected: &'static str) -> Result<u64, EnvError> {
    raw.trim().parse::<u64>().map_err(|_| EnvError {
        var,
        value: raw.to_string(),
        expected,
    })
}

/// Parse a raw string as a `usize` (same rejection rules).
pub fn parse_usize(
    var: &'static str,
    raw: &str,
    expected: &'static str,
) -> Result<usize, EnvError> {
    raw.trim().parse::<usize>().map_err(|_| EnvError {
        var,
        value: raw.to_string(),
        expected,
    })
}

/// Read an env var and parse it as `u64`. `Ok(None)` when unset;
/// non-unicode values are malformed, not absent.
pub fn read_u64(var: &'static str, expected: &'static str) -> Result<Option<u64>, EnvError> {
    match std::env::var(var) {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(v)) => Err(EnvError {
            var,
            value: v.to_string_lossy().into_owned(),
            expected,
        }),
        Ok(v) => parse_u64(var, &v, expected).map(Some),
    }
}

/// Read an env var and parse it as `usize`.
pub fn read_usize(var: &'static str, expected: &'static str) -> Result<Option<usize>, EnvError> {
    match std::env::var(var) {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(v)) => Err(EnvError {
            var,
            value: v.to_string_lossy().into_owned(),
            expected,
        }),
        Ok(v) => parse_usize(var, &v, expected).map(Some),
    }
}

/// Read an env var as a millisecond count.
pub fn read_ms(var: &'static str, expected: &'static str) -> Result<Option<Duration>, EnvError> {
    Ok(read_u64(var, expected)?.map(Duration::from_millis))
}

/// Read an env var as a microsecond count.
pub fn read_us(var: &'static str, expected: &'static str) -> Result<Option<Duration>, EnvError> {
    Ok(read_u64(var, expected)?.map(Duration::from_micros))
}

/// Read-with-default for the cached hot-path getters: a malformed value
/// falls back to `default` (construction-time [`validate`] is the loud
/// path; see the module docs for why workers never panic here).
pub fn read_u64_or(var: &'static str, default: u64) -> u64 {
    read_u64(var, "an integer")
        .ok()
        .flatten()
        .unwrap_or(default)
}

/// [`read_u64_or`] for `usize` knobs.
pub fn read_usize_or(var: &'static str, default: usize) -> usize {
    read_usize(var, "an integer")
        .ok()
        .flatten()
        .unwrap_or(default)
}

/// Check every known `PIPMCOLL_*` variable, returning the first typed
/// error. Called by fabric constructors so a typo fails fast with a
/// readable message instead of panicking in a worker thread later.
pub fn validate() -> Result<(), EnvError> {
    read_ms("PIPMCOLL_SYNC_TIMEOUT_MS", "a whole number of milliseconds")?;
    read_us("PIPMCOLL_SPIN_US", "a whole number of microseconds")?;
    read_usize("PIPMCOLL_POOL_CAP", "a whole number of buffers")?;
    read_ms("PIPMCOLL_HEARTBEAT_MS", "a millisecond count")?;
    read_usize("PIPMCOLL_PROGRESS_THREADS", "a thread count")?;
    read_ms("PIPMCOLL_BROWNOUT_MS", "a millisecond count (0 disables)")?;
    read_u64("PIPMCOLL_BROWNOUT_RETRANSMITS", "a retransmit count")?;
    read_u64("PIPMCOLL_BROWNOUT_P99_MS", "a millisecond count")?;
    if let Some(lanes) = read_usize("PIPMCOLL_FABRIC_LANES", "a positive lane count")? {
        if lanes == 0 {
            return Err(EnvError {
                var: "PIPMCOLL_FABRIC_LANES",
                value: "0".to_string(),
                expected: "a positive lane count",
            });
        }
    }
    if let Ok(spec) = std::env::var("PIPMCOLL_CHAOS") {
        if let Err(e) = crate::ChaosConfig::parse(&spec) {
            return Err(EnvError {
                var: "PIPMCOLL_CHAOS",
                value: spec,
                expected: "a chaos spec (see ChaosConfig::parse)",
            })
            .map_err(|mut err| {
                err.value = format!("{} ({e})", err.value);
                err
            });
        }
    }
    if let Ok(policy) = std::env::var("PIPMCOLL_LANE_POLICY") {
        if crate::LanePolicy::parse(&policy).is_none() {
            return Err(EnvError {
                var: "PIPMCOLL_LANE_POLICY",
                value: policy,
                expected: "\"modulo\" or \"stripe\"",
            });
        }
    }
    read_u64("PIPMCOLL_CHAOS_SEED", "a u64 seed")?;
    read_u64("PIPMCOLL_SVC_NIC_BUDGET", "a bytes-per-second rate")?;
    read_u64("PIPMCOLL_SVC_RETRY_MAX", "a retry count")?;
    read_u64("PIPMCOLL_SVC_DEADLINE_MS", "a millisecond count")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The parse functions are tested on raw strings rather than by
    // mutating the process environment: env vars are process-global and
    // the rest of the suite reads the real PIPMCOLL_* values through
    // OnceLock caches.

    #[test]
    fn valid_values_parse() {
        assert_eq!(parse_u64("X", "42", "int"), Ok(42));
        assert_eq!(parse_u64("X", "  7 ", "int"), Ok(7), "whitespace trimmed");
        assert_eq!(parse_usize("X", "0", "int"), Ok(0));
        assert_eq!(parse_u64("X", &u64::MAX.to_string(), "int"), Ok(u64::MAX));
    }

    #[test]
    fn empty_value_is_malformed() {
        let e = parse_u64("PIPMCOLL_SYNC_TIMEOUT_MS", "", "a millisecond count").unwrap_err();
        assert_eq!(e.var, "PIPMCOLL_SYNC_TIMEOUT_MS");
        let msg = e.to_string();
        assert!(msg.contains("PIPMCOLL_SYNC_TIMEOUT_MS"), "{msg}");
        assert!(msg.contains("millisecond"), "{msg}");
    }

    #[test]
    fn garbage_value_is_malformed() {
        assert!(parse_u64("X", "ten", "int").is_err());
        assert!(parse_u64("X", "10ms", "int").is_err());
        assert!(parse_u64("X", "-5", "int").is_err());
        assert!(parse_u64("X", "1.5", "int").is_err());
        assert!(parse_usize("X", "0x10", "int").is_err());
    }

    #[test]
    fn overflow_value_is_malformed() {
        // One past u64::MAX.
        let e = parse_u64("X", "18446744073709551616", "int").unwrap_err();
        assert_eq!(e.value, "18446744073709551616");
        assert!(parse_u64("X", "99999999999999999999999999", "int").is_err());
    }

    #[test]
    fn unset_reads_as_none() {
        // A name nothing in the environment plausibly sets.
        assert_eq!(read_u64("PIPMCOLL_TEST_UNSET_XYZZY", "int"), Ok(None));
        assert_eq!(read_ms("PIPMCOLL_TEST_UNSET_XYZZY", "int"), Ok(None));
        assert_eq!(read_u64_or("PIPMCOLL_TEST_UNSET_XYZZY", 17), 17);
    }

    #[test]
    fn lane_policy_spellings() {
        use crate::LanePolicy;
        assert_eq!(LanePolicy::parse("modulo"), Some(LanePolicy::Modulo));
        assert_eq!(LanePolicy::parse(" stripe "), Some(LanePolicy::Stripe));
        assert_eq!(LanePolicy::parse("striped"), None);
        assert_eq!(LanePolicy::parse(""), None);
    }

    #[test]
    fn validate_accepts_the_test_environment() {
        // The test environment sets none of these (or sets them validly
        // in CI); either way validation must pass.
        validate().expect("test environment is clean");
    }
}
