//! Per-lane traffic counters and latency histograms — the observables
//! that let benches and tests confirm lane striping spreads load and
//! that the ack path stays fast.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters for one lane (one striped object of the transport).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Messages accepted for transmission on this lane.
    pub msgs: u64,
    /// Payload bytes accepted on this lane.
    pub bytes: u64,
    /// Times a sender blocked because this lane's bounded queue was full.
    pub stalls: u64,
}

/// A lock-free log2-bucketed latency histogram. Recording is two atomic
/// ops on the hot path; percentiles are computed at snapshot time from
/// the bucket counts. A percentile is reported as the *geometric
/// midpoint* of its bucket (`2^(i+0.5)` ns for bucket `i`), so the
/// reported value is within a factor of √2 of the true percentile in
/// either direction — an unbiased ±√2 bound, where the previous
/// upper-bound convention inflated every percentile by up to 2×.
pub struct LatencyHist {
    /// `buckets[i]` counts samples with `floor(log2(ns)) == i`
    /// (bucket 0 also holds sub-nanosecond samples).
    buckets: [AtomicU64; 64],
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> LatencyHist {
        LatencyHist::default()
    }

    /// Forget every sample. The brownout detector wipes a restored
    /// lane's history with this, so degraded-era samples cannot keep
    /// re-demoting a lane that has recovered.
    pub fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Record one sample.
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).max(1);
        let bucket = 63 - ns.leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time percentile summary. An empty histogram reports
    /// `None` percentiles — "no samples" is observably different from a
    /// genuine sub-microsecond measurement.
    pub fn snapshot(&self) -> LatencySnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return LatencySnapshot::default();
        }
        // A percentile lands in the bucket where the running count
        // crosses it; report the bucket's geometric midpoint (2^(i+0.5)
        // ns, rounded to µs) — the unbiased representative of a log2
        // bucket, accurate to within ×/÷ √2. The old upper-bound
        // convention quantized every percentile onto powers of two
        // (1049/2098/4195 µs...) and overstated by up to 2×.
        let pick = |p: f64| {
            let target = ((total as f64) * p).ceil() as u64;
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target {
                    let mid_ns = (1u64 << i) as f64 * std::f64::consts::SQRT_2;
                    return Some((mid_ns / 1000.0).round() as u64);
                }
            }
            None
        };
        LatencySnapshot {
            count: total,
            p50_us: pick(0.50),
            p99_us: pick(0.99),
        }
    }
}

/// Percentile summary of a [`LatencyHist`] (integer µs so stats stay
/// `Eq`-comparable). Percentiles are `None` when no samples were
/// recorded — previously an empty histogram snapshotted as `0`, which
/// made "the rendezvous path never measured anything" look like "the
/// ack RTT is zero" in `BENCH_fabric.json`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Median, in microseconds (geometric midpoint of its log2 bucket,
    /// ±√2); `None` if no samples were recorded.
    pub p50_us: Option<u64>,
    /// 99th percentile, in microseconds (geometric midpoint of its log2
    /// bucket, ±√2); `None` if no samples were recorded.
    pub p99_us: Option<u64>,
}

/// A snapshot of a fabric's traffic counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// One entry per lane, in lane order.
    pub lanes: Vec<LaneStats>,
    /// Messages between ranks of one node, which never touch a lane
    /// (delivered through the shared address space).
    pub local_msgs: u64,
    /// Payload bytes of node-local messages.
    pub local_bytes: u64,
    /// Payload-bearing frames retransmitted because no ack arrived in
    /// time (loss on the wire, injected or real).
    pub retransmits: u64,
    /// Wire re-deliveries suppressed by receiver sequence dedup.
    pub dups_dropped: u64,
    /// Inbound frames discarded because their CRC-32C failed (line
    /// noise, real or injected). Each one is recovered by the sender's
    /// retransmit exactly like a dropped frame — a non-zero count with
    /// correct results is the integrity layer working.
    pub corrupt_frames: u64,
    /// Messages the stripe lane policy split into per-lane segments
    /// (each still counts once in `lanes[..].msgs`); always 0 under the
    /// modulo policy.
    pub striped_msgs: u64,
    /// Round-trip time from first transmission of an eager frame to the
    /// cumulative ack that covered it (never from retransmissions —
    /// their acks are ambiguous).
    pub ack_rtt: LatencySnapshot,
    /// Deepest any control queue (the unbounded ack/rendezvous reply
    /// side of a lane's send queue) ever got — visibility into the one
    /// queue backpressure cannot bound.
    pub ctrl_queue_hwm: u64,
}

impl FabricStats {
    /// Total messages accepted across all lanes (excluding node-local).
    pub fn total_msgs(&self) -> u64 {
        self.lanes.iter().map(|l| l.msgs).sum()
    }

    /// Total payload bytes accepted across all lanes (excluding
    /// node-local).
    pub fn total_bytes(&self) -> u64 {
        self.lanes.iter().map(|l| l.bytes).sum()
    }

    /// Total backpressure stalls across all lanes.
    pub fn total_stalls(&self) -> u64 {
        self.lanes.iter().map(|l| l.stalls).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_lanes() {
        let s = FabricStats {
            lanes: vec![
                LaneStats {
                    msgs: 2,
                    bytes: 10,
                    stalls: 1,
                },
                LaneStats {
                    msgs: 3,
                    bytes: 20,
                    stalls: 0,
                },
            ],
            local_msgs: 7,
            local_bytes: 70,
            ..FabricStats::default()
        };
        assert_eq!(s.total_msgs(), 5);
        assert_eq!(s.total_bytes(), 30);
        assert_eq!(s.total_stalls(), 1);
    }

    #[test]
    fn empty_histogram_snapshots_to_none() {
        let s = LatencyHist::new().snapshot();
        assert_eq!(s, LatencySnapshot::default());
        assert_eq!(s.p50_us, None, "no samples must not read as 0µs");
        assert_eq!(s.p99_us, None);
    }

    #[test]
    fn percentiles_bracket_the_samples() {
        let h = LatencyHist::new();
        // 98 samples at ~1µs, two at ~1ms: the median stays in the fast
        // bucket while the 99th sample (the first outlier) sets p99.
        for _ in 0..98 {
            h.record(Duration::from_micros(1));
        }
        h.record(Duration::from_millis(1));
        h.record(Duration::from_millis(1));
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // 1µs = 1000ns → bucket 9 (512..1024ns), geometric midpoint
        // 512·√2 ≈ 724ns → 1µs.
        assert_eq!(s.p50_us, Some(1));
        // 1ms = 1e6 ns → bucket 19 (524288..1048576ns), midpoint
        // 524288·√2 ≈ 741456ns → 741µs — not the power-of-two 1049.
        assert_eq!(s.p99_us, Some(741));
    }

    #[test]
    fn midpoints_are_never_power_of_two_quantized() {
        // The bug this guards against: percentiles reported as exact
        // bucket upper bounds (2^n ns), which read as measurements but
        // are quantization artifacts.
        let h = LatencyHist::new();
        h.record(Duration::from_micros(900));
        let p50 = h.snapshot().p50_us.expect("one sample recorded");
        let ns = p50 * 1000;
        assert!(!ns.is_power_of_two(), "p50 {p50}µs is a bucket bound");
        // The midpoint is within ×/÷√2 of the true 900µs sample.
        assert!((637..=1273).contains(&p50), "p50 {p50}µs outside ±√2");
    }

    #[test]
    fn extreme_samples_do_not_panic() {
        let h = LatencyHist::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(u64::MAX / 2));
        assert_eq!(h.snapshot().count, 2);
    }
}
