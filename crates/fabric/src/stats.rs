//! Per-lane traffic counters — the observable that lets benches and tests
//! confirm lane striping actually spreads load.

/// Counters for one lane (one striped object of the transport).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Messages accepted for transmission on this lane.
    pub msgs: u64,
    /// Payload bytes accepted on this lane.
    pub bytes: u64,
    /// Times a sender blocked because this lane's bounded queue was full.
    pub stalls: u64,
}

/// A snapshot of a fabric's traffic counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// One entry per lane, in lane order.
    pub lanes: Vec<LaneStats>,
    /// Messages between ranks of one node, which never touch a lane
    /// (delivered through the shared address space).
    pub local_msgs: u64,
    /// Payload bytes of node-local messages.
    pub local_bytes: u64,
    /// Payload-bearing frames retransmitted because no ack arrived in
    /// time (loss on the wire, injected or real).
    pub retransmits: u64,
    /// Wire re-deliveries suppressed by receiver sequence dedup.
    pub dups_dropped: u64,
}

impl FabricStats {
    /// Total messages accepted across all lanes (excluding node-local).
    pub fn total_msgs(&self) -> u64 {
        self.lanes.iter().map(|l| l.msgs).sum()
    }

    /// Total payload bytes accepted across all lanes (excluding
    /// node-local).
    pub fn total_bytes(&self) -> u64 {
        self.lanes.iter().map(|l| l.bytes).sum()
    }

    /// Total backpressure stalls across all lanes.
    pub fn total_stalls(&self) -> u64 {
        self.lanes.iter().map(|l| l.stalls).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_lanes() {
        let s = FabricStats {
            lanes: vec![
                LaneStats {
                    msgs: 2,
                    bytes: 10,
                    stalls: 1,
                },
                LaneStats {
                    msgs: 3,
                    bytes: 20,
                    stalls: 0,
                },
            ],
            local_msgs: 7,
            local_bytes: 70,
            ..FabricStats::default()
        };
        assert_eq!(s.total_msgs(), 5);
        assert_eq!(s.total_bytes(), 30);
        assert_eq!(s.total_stalls(), 1);
    }
}
