//! Per-lane traffic counters and latency histograms — the observables
//! that let benches and tests confirm lane striping spreads load and
//! that the ack path stays fast.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters for one lane (one striped object of the transport).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Messages accepted for transmission on this lane.
    pub msgs: u64,
    /// Payload bytes accepted on this lane.
    pub bytes: u64,
    /// Times a sender blocked because this lane's bounded queue was full.
    pub stalls: u64,
}

/// A lock-free log2-bucketed latency histogram. Recording is two atomic
/// ops on the hot path; percentiles are computed at snapshot time from
/// the bucket counts (each bucket spans one power of two of
/// nanoseconds, so a percentile is exact to within 2×).
pub struct LatencyHist {
    /// `buckets[i]` counts samples with `floor(log2(ns)) == i`
    /// (bucket 0 also holds sub-nanosecond samples).
    buckets: [AtomicU64; 64],
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> LatencyHist {
        LatencyHist::default()
    }

    /// Record one sample.
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).max(1);
        let bucket = 63 - ns.leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time percentile summary.
    pub fn snapshot(&self) -> LatencySnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return LatencySnapshot::default();
        }
        // A percentile lands in the bucket where the running count
        // crosses it; report the bucket's upper bound in microseconds.
        let pick = |p: f64| {
            let target = ((total as f64) * p).ceil() as u64;
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target {
                    let upper_ns = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
                    return upper_ns.div_ceil(1000);
                }
            }
            u64::MAX
        };
        LatencySnapshot {
            count: total,
            p50_us: pick(0.50),
            p99_us: pick(0.99),
        }
    }
}

/// Percentile summary of a [`LatencyHist`] (integer µs so stats stay
/// `Eq`-comparable).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Median, in microseconds (upper bound of its log2 bucket).
    pub p50_us: u64,
    /// 99th percentile, in microseconds (upper bound of its log2 bucket).
    pub p99_us: u64,
}

/// A snapshot of a fabric's traffic counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// One entry per lane, in lane order.
    pub lanes: Vec<LaneStats>,
    /// Messages between ranks of one node, which never touch a lane
    /// (delivered through the shared address space).
    pub local_msgs: u64,
    /// Payload bytes of node-local messages.
    pub local_bytes: u64,
    /// Payload-bearing frames retransmitted because no ack arrived in
    /// time (loss on the wire, injected or real).
    pub retransmits: u64,
    /// Wire re-deliveries suppressed by receiver sequence dedup.
    pub dups_dropped: u64,
    /// Round-trip time from first transmission of an eager frame to the
    /// cumulative ack that covered it (never from retransmissions —
    /// their acks are ambiguous).
    pub ack_rtt: LatencySnapshot,
    /// Deepest any control queue (the unbounded ack/rendezvous reply
    /// side of a lane's send queue) ever got — visibility into the one
    /// queue backpressure cannot bound.
    pub ctrl_queue_hwm: u64,
}

impl FabricStats {
    /// Total messages accepted across all lanes (excluding node-local).
    pub fn total_msgs(&self) -> u64 {
        self.lanes.iter().map(|l| l.msgs).sum()
    }

    /// Total payload bytes accepted across all lanes (excluding
    /// node-local).
    pub fn total_bytes(&self) -> u64 {
        self.lanes.iter().map(|l| l.bytes).sum()
    }

    /// Total backpressure stalls across all lanes.
    pub fn total_stalls(&self) -> u64 {
        self.lanes.iter().map(|l| l.stalls).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_lanes() {
        let s = FabricStats {
            lanes: vec![
                LaneStats {
                    msgs: 2,
                    bytes: 10,
                    stalls: 1,
                },
                LaneStats {
                    msgs: 3,
                    bytes: 20,
                    stalls: 0,
                },
            ],
            local_msgs: 7,
            local_bytes: 70,
            ..FabricStats::default()
        };
        assert_eq!(s.total_msgs(), 5);
        assert_eq!(s.total_bytes(), 30);
        assert_eq!(s.total_stalls(), 1);
    }

    #[test]
    fn empty_histogram_snapshots_to_zero() {
        assert_eq!(LatencyHist::new().snapshot(), LatencySnapshot::default());
    }

    #[test]
    fn percentiles_bracket_the_samples() {
        let h = LatencyHist::new();
        // 98 samples at ~1µs, two at ~1ms: the median stays in the fast
        // bucket while the 99th sample (the first outlier) sets p99.
        for _ in 0..98 {
            h.record(Duration::from_micros(1));
        }
        h.record(Duration::from_millis(1));
        h.record(Duration::from_millis(1));
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // 1µs = 1000ns → bucket 9 (512..1024), upper bound 1024ns → 2µs.
        assert_eq!(s.p50_us, 2);
        // 1ms = 1e6 ns → bucket 19 (524288..1048576), upper 1048576ns
        // → 1049µs (rounded up).
        assert_eq!(s.p99_us, 1049);
    }

    #[test]
    fn extreme_samples_do_not_panic() {
        let h = LatencyHist::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(u64::MAX / 2));
        assert_eq!(h.snapshot().count, 2);
    }
}
