//! The wire-tag namespace registry: every subsystem that puts a 32-bit
//! tag on the wire carves its space here, in one file, so disjointness
//! is checkable at a glance (and by the unit tests below).
//!
//! Layout of the 32-bit tag space:
//!
//! ```text
//! 0x0000_0000 .. 0x0000_FFFF   plain collective tags (schedule Tag ids)
//! 0xC000_0000 .. 0xCFFF_FFFF   service collectives (pipmcoll-svc):
//!                              1100 | comm_id:10 | seq_slot:12 | phase:6
//! 0xFE00_0000 .. 0xFEFF_FFFF   retry epochs (rt::ft::ShrunkComm):
//!                              0xFE | epoch:8 | tag:16
//! 0xFF00_0000 .. 0xFFFF_FFFF   failed-set agreement sweeps:
//!                              0xFF | domain:8 | epoch:8 | sweep:8
//!                              (domain 0 = rt::ft, 1 = pipmcoll-svc)
//! ```
//!
//! The service layout gives each communicator 2^10 = 1024 ids, each
//! in-flight collective one of 2^12 = 4096 sequence slots (the
//! [`TagSpace`] allocator in `pipmcoll-svc` recycles slots as
//! collectives complete), and each collective 2^6 = 64 internal phases —
//! enough for a binomial tree (≤ `log2(world)` rounds) or a ring
//! (`world - 1` rounds) at the world sizes the runtime supports
//! (`RankSet` caps the world at 64 ranks).

/// Namespace prefix for failed-set agreement sweeps.
pub const AGREE_NS: u32 = 0xFF00_0000;
/// Namespace prefix for retry-epoch collectives.
pub const RETRY_NS: u32 = 0xFE00_0000;
/// Namespace prefix for service-layer collectives.
pub const SVC_NS: u32 = 0xC000_0000;

/// Bits of the service tag carrying the communicator id.
pub const SVC_COMM_BITS: u32 = 10;
/// Bits of the service tag carrying the collective sequence slot.
pub const SVC_SEQ_BITS: u32 = 12;
/// Bits of the service tag carrying the internal phase.
pub const SVC_PHASE_BITS: u32 = 6;

/// Exclusive upper bound on service communicator ids.
pub const SVC_MAX_COMMS: u32 = 1 << SVC_COMM_BITS;
/// Exclusive upper bound on service sequence slots.
pub const SVC_MAX_SEQ: u32 = 1 << SVC_SEQ_BITS;
/// Exclusive upper bound on service phases.
pub const SVC_MAX_PHASE: u32 = 1 << SVC_PHASE_BITS;

/// The rt-layer agreement-sweep tag for `(epoch, sweep)` (domain 0).
pub fn agree(epoch: u32, sweep: u32) -> u32 {
    debug_assert!(epoch < 1 << 8 && sweep < 1 << 8);
    AGREE_NS | (epoch << 8) | sweep
}

/// The service-layer agreement-sweep tag (domain 1 of the `0xFF`
/// namespace, so an engine-driven agreement can never collide with a
/// concurrent rt-layer one). The service's agreement counter is
/// unbounded, so `epoch` is taken modulo 256 — safe because at most one
/// service agreement is in flight per engine and its sweeps complete
/// before the counter can wrap back around.
pub fn svc_agree(epoch: u32, sweep: u32) -> u32 {
    debug_assert!(sweep < 1 << 8);
    AGREE_NS | (1 << 16) | ((epoch & 0xFF) << 8) | sweep
}

/// The retry-epoch tag wrapping a plain collective `tag` (≤ 16 bits).
pub fn retry(epoch: u32, tag: u32) -> u32 {
    debug_assert!(epoch < 1 << 8);
    RETRY_NS | (epoch << 16) | (tag & 0xFFFF)
}

/// The service tag for phase `phase` of the collective in sequence slot
/// `seq_slot` on communicator `comm`.
pub fn svc(comm: u32, seq_slot: u32, phase: u32) -> u32 {
    debug_assert!(comm < SVC_MAX_COMMS, "comm id {comm} out of range");
    debug_assert!(seq_slot < SVC_MAX_SEQ, "seq slot {seq_slot} out of range");
    debug_assert!(phase < SVC_MAX_PHASE, "phase {phase} out of range");
    SVC_NS | (comm << (SVC_SEQ_BITS + SVC_PHASE_BITS)) | (seq_slot << SVC_PHASE_BITS) | phase
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The namespace a tag falls in, for the disjointness proofs.
    fn ns(tag: u32) -> &'static str {
        if tag <= 0xFFFF {
            "plain"
        } else if tag & 0xF000_0000 == SVC_NS {
            "svc"
        } else if tag & 0xFF00_0000 == RETRY_NS {
            "retry"
        } else if tag & 0xFF00_0000 == AGREE_NS {
            "agree"
        } else {
            "unclaimed"
        }
    }

    #[test]
    fn svc_layout_fills_the_word() {
        assert_eq!(4 + SVC_COMM_BITS + SVC_SEQ_BITS + SVC_PHASE_BITS, 32);
    }

    #[test]
    fn svc_packing_round_trips() {
        let t = svc(SVC_MAX_COMMS - 1, SVC_MAX_SEQ - 1, SVC_MAX_PHASE - 1);
        assert_eq!(t, 0xCFFF_FFFF, "all-ones coordinates fill the suffix");
        assert_eq!(svc(0, 0, 0), SVC_NS);
        // Distinct coordinates give distinct tags.
        let a = svc(3, 100, 5);
        assert_ne!(a, svc(4, 100, 5));
        assert_ne!(a, svc(3, 101, 5));
        assert_ne!(a, svc(3, 100, 6));
    }

    #[test]
    fn namespaces_are_disjoint() {
        assert_eq!(ns(0), "plain");
        assert_eq!(ns(0xFFFF), "plain");
        assert_eq!(ns(svc(0, 0, 0)), "svc");
        assert_eq!(
            ns(svc(SVC_MAX_COMMS - 1, SVC_MAX_SEQ - 1, SVC_MAX_PHASE - 1)),
            "svc"
        );
        assert_eq!(ns(retry(0, 0)), "retry");
        assert_eq!(ns(retry(255, 0xFFFF)), "retry");
        assert_eq!(ns(agree(0, 0)), "agree");
        assert_eq!(ns(agree(255, 255)), "agree");
        assert_eq!(ns(svc_agree(0, 0)), "agree");
        assert_eq!(ns(svc_agree(4096, 255)), "agree");
    }

    #[test]
    fn svc_agreement_domain_is_disjoint_from_rt() {
        for epoch in [0u32, 1, 7, 255] {
            for sweep in [0u32, 1, 5, 255] {
                assert_ne!(
                    svc_agree(epoch, sweep),
                    agree(epoch, sweep),
                    "epoch {epoch} sweep {sweep}"
                );
                // Distinct (epoch mod 256, sweep) pairs give distinct tags.
                assert_eq!(svc_agree(epoch + 256, sweep), svc_agree(epoch, sweep));
            }
        }
    }

    #[test]
    fn legacy_constants_are_preserved() {
        // rt::ft's original bit layouts, now produced by the helpers.
        assert_eq!(agree(2, 3), 0xFF00_0000 | (2 << 8) | 3);
        assert_eq!(retry(1, 0x0042), 0xFE00_0000 | (1 << 16) | 0x0042);
    }
}
