//! Simulated collective latencies at a reduced scale, one group per paper
//! figure family — a fast micro-bench view of the same comparisons the
//! figure harnesses run at full 128×18 scale. The *measured quantity* is
//! the simulator's virtual makespan computation, benchmarked per library so
//! regressions in any algorithm's schedule size show up immediately.

use pipmcoll_bench::microbench::{black_box, Group};
use pipmcoll_core::{
    run_collective, AllgatherParams, AllreduceParams, CollectiveSpec, LibraryProfile, ScatterParams,
};
use pipmcoll_model::presets;

const NODES: usize = 16;
const PPN: usize = 6;

fn bench_family(group: &str, spec_small: CollectiveSpec, spec_large: CollectiveSpec) {
    let machine = presets::bebop(NODES, PPN);
    let mut g = Group::new(group);
    for lib in [
        LibraryProfile::PipMColl,
        LibraryProfile::PipMpich,
        LibraryProfile::IntelMpi,
    ] {
        for (tag, spec) in [("small", spec_small), ("large", spec_large)] {
            g.bench(&format!("{}/{tag}", lib.name()), || {
                black_box(run_collective(lib, machine, &spec).expect("simulate"));
            });
        }
    }
}

fn scatter() {
    bench_family(
        "scatter_sim",
        CollectiveSpec::Scatter(ScatterParams { cb: 64, root: 0 }),
        CollectiveSpec::Scatter(ScatterParams {
            cb: 64 * 1024,
            root: 0,
        }),
    );
}

fn allgather() {
    bench_family(
        "allgather_sim",
        CollectiveSpec::Allgather(AllgatherParams { cb: 64 }),
        CollectiveSpec::Allgather(AllgatherParams { cb: 128 * 1024 }),
    );
}

fn allreduce() {
    bench_family(
        "allreduce_sim",
        CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(64)),
        CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(64 * 1024)),
    );
}

fn main() {
    scatter();
    allgather();
    allreduce();
}
