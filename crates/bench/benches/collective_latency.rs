//! Simulated collective latencies at a reduced scale, one group per paper
//! figure family — a fast Criterion view of the same comparisons the
//! figure harnesses run at full 128×18 scale. The *measured quantity* is
//! the simulator's virtual makespan computation, benchmarked per library so
//! regressions in any algorithm's schedule size show up immediately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipmcoll_core::{
    run_collective, AllgatherParams, AllreduceParams, CollectiveSpec, LibraryProfile,
    ScatterParams,
};
use pipmcoll_model::presets;

const NODES: usize = 16;
const PPN: usize = 6;

fn bench_family(
    c: &mut Criterion,
    group: &str,
    spec_small: CollectiveSpec,
    spec_large: CollectiveSpec,
) {
    let machine = presets::bebop(NODES, PPN);
    let mut g = c.benchmark_group(group);
    for lib in [
        LibraryProfile::PipMColl,
        LibraryProfile::PipMpich,
        LibraryProfile::IntelMpi,
    ] {
        for (tag, spec) in [("small", spec_small), ("large", spec_large)] {
            g.bench_with_input(
                BenchmarkId::new(lib.name(), tag),
                &spec,
                |b, spec| {
                    b.iter(|| run_collective(lib, machine, spec).expect("simulate"))
                },
            );
        }
    }
    g.finish();
}

fn scatter(c: &mut Criterion) {
    bench_family(
        c,
        "scatter_sim",
        CollectiveSpec::Scatter(ScatterParams { cb: 64, root: 0 }),
        CollectiveSpec::Scatter(ScatterParams { cb: 64 * 1024, root: 0 }),
    );
}

fn allgather(c: &mut Criterion) {
    bench_family(
        c,
        "allgather_sim",
        CollectiveSpec::Allgather(AllgatherParams { cb: 64 }),
        CollectiveSpec::Allgather(AllgatherParams { cb: 128 * 1024 }),
    );
}

fn allreduce(c: &mut Criterion) {
    bench_family(
        c,
        "allreduce_sim",
        CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(64)),
        CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(64 * 1024)),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = scatter, allgather, allreduce
}
criterion_main!(benches);
