//! Real wall-clock benchmarks of the intranode auxiliary collectives
//! (§III-C) on the thread-based PiP runtime — genuine shared-address-space
//! data movement, not simulation.
//!
//! Covers the paper's auxiliary building blocks (broadcast, gather, reduce)
//! in their small- and large-message variants, across node widths.

use pipmcoll_bench::microbench::{Group, Throughput};
use pipmcoll_core::mcoll::intranode::{
    intra_bcast_chunked, intra_bcast_large, intra_bcast_small, intra_gather, intra_reduce_binomial,
    intra_reduce_chunked,
};
use pipmcoll_model::{Datatype, ReduceOp, Topology};
use pipmcoll_rt::run_cluster_timed;
use pipmcoll_sched::BufSizes;

/// Time `iters` iterations of an intranode collective on `ppn` threads.
fn time_intranode(
    ppn: usize,
    sizes: impl Fn(usize) -> BufSizes + Sync,
    iters: u64,
    algo: impl Fn(&mut pipmcoll_rt::RtComm) + Sync,
) -> std::time::Duration {
    let topo = Topology::new(1, ppn);
    let res = run_cluster_timed(
        topo,
        &sizes,
        |r| vec![(r & 0xff) as u8; sizes(r).send],
        iters as usize,
        algo,
    );
    res.elapsed
}

fn bench_bcast() {
    let mut g = Group::new("intranode_bcast");
    for ppn in [2usize, 4, 8] {
        for cb in [64usize, 4096, 262_144] {
            g.throughput(Throughput::Bytes(cb as u64));
            g.bench_custom(&format!("small/p{ppn}/{cb}"), |iters| {
                time_intranode(
                    ppn,
                    |_| BufSizes::new(cb, cb),
                    iters,
                    |comm| intra_bcast_small(comm, cb),
                )
            });
            g.bench_custom(&format!("large/p{ppn}/{cb}"), |iters| {
                time_intranode(
                    ppn,
                    |_| BufSizes::new(cb, cb),
                    iters,
                    |comm| intra_bcast_large(comm, cb),
                )
            });
            g.bench_custom(&format!("chunked/p{ppn}/{cb}"), |iters| {
                time_intranode(
                    ppn,
                    |_| BufSizes::new(cb, cb),
                    iters,
                    |comm| intra_bcast_chunked(comm, cb),
                )
            });
        }
    }
}

fn bench_gather() {
    let mut g = Group::new("intranode_gather");
    for ppn in [2usize, 4, 8] {
        for cb in [64usize, 16_384] {
            g.throughput(Throughput::Bytes((cb * ppn) as u64));
            g.bench_custom(&format!("p{ppn}/{cb}"), |iters| {
                time_intranode(
                    ppn,
                    move |r| BufSizes::new(cb, if r == 0 { ppn * cb } else { 0 }),
                    iters,
                    |comm| intra_gather(comm, cb),
                )
            });
        }
    }
}

fn bench_reduce() {
    let mut g = Group::new("intranode_reduce");
    for ppn in [2usize, 4, 8] {
        for count in [64usize, 32_768] {
            let cb = count * 8;
            g.throughput(Throughput::Bytes(cb as u64));
            g.bench_custom(&format!("binomial/p{ppn}/{count}"), |iters| {
                time_intranode(
                    ppn,
                    |_| BufSizes::new(cb, cb),
                    iters,
                    |comm| intra_reduce_binomial(comm, cb, ReduceOp::Sum, Datatype::Double),
                )
            });
            g.bench_custom(&format!("chunked/p{ppn}/{count}"), |iters| {
                time_intranode(
                    ppn,
                    |_| BufSizes::new(cb, cb),
                    iters,
                    |comm| intra_reduce_chunked(comm, count, ReduceOp::Sum, Datatype::Double),
                )
            });
        }
    }
}

fn main() {
    bench_bcast();
    bench_gather();
    bench_reduce();
}
