//! Meta-benchmarks of the reproduction's own machinery: schedule recording
//! speed, dataflow interpretation speed, and discrete-event simulation
//! throughput. These guard the harness's ability to reach the paper's
//! 128×18 scale in reasonable time.

use pipmcoll_bench::microbench::{black_box, Group, Throughput};
use pipmcoll_core::{build_schedule, AllgatherParams, CollectiveSpec, LibraryProfile};
use pipmcoll_engine::{simulate, EngineConfig};
use pipmcoll_model::{presets, Topology};
use pipmcoll_sched::dataflow::{execute, SchedulingPolicy};
use pipmcoll_sched::verify::pattern;

fn bench_recording() {
    let mut g = Group::new("schedule_recording");
    for (nodes, ppn) in [(8usize, 4usize), (32, 18)] {
        let topo = Topology::new(nodes, ppn);
        let spec = CollectiveSpec::Allgather(AllgatherParams { cb: 64 });
        g.bench(&format!("mcoll_allgather/{nodes}x{ppn}"), || {
            black_box(build_schedule(LibraryProfile::PipMColl, topo, &spec));
        });
    }
}

fn bench_simulation() {
    let mut g = Group::new("des_simulation");
    for (nodes, ppn) in [(8usize, 4usize), (32, 18)] {
        let machine = presets::bebop(nodes, ppn);
        let spec = CollectiveSpec::Allgather(AllgatherParams { cb: 64 });
        let sched = build_schedule(LibraryProfile::PipMColl, machine.topo, &spec);
        let cfg = EngineConfig::pip_mcoll(machine);
        g.throughput(Throughput::Elements(sched.total_ops() as u64));
        g.bench(&format!("mcoll_allgather/{nodes}x{ppn}"), || {
            black_box(simulate(&cfg, &sched).expect("simulate"));
        });
    }
}

fn bench_dataflow() {
    let mut g = Group::new("dataflow_interpreter");
    for (nodes, ppn) in [(4usize, 4usize), (8, 4)] {
        let topo = Topology::new(nodes, ppn);
        let spec = CollectiveSpec::Allgather(AllgatherParams { cb: 64 });
        let sched = build_schedule(LibraryProfile::PipMColl, topo, &spec);
        g.throughput(Throughput::Elements(sched.total_ops() as u64));
        g.bench(&format!("mcoll_allgather/{nodes}x{ppn}"), || {
            black_box(
                execute(&sched, |r| pattern(r, 64), SchedulingPolicy::RoundRobin)
                    .expect("interpret"),
            );
        });
    }
}

fn main() {
    bench_recording();
    bench_simulation();
    bench_dataflow();
}
