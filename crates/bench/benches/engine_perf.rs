//! Meta-benchmarks of the reproduction's own machinery: schedule recording
//! speed, dataflow interpretation speed, and discrete-event simulation
//! throughput. These guard the harness's ability to reach the paper's
//! 128×18 scale in reasonable time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pipmcoll_core::{build_schedule, AllgatherParams, CollectiveSpec, LibraryProfile};
use pipmcoll_engine::{simulate, EngineConfig};
use pipmcoll_model::{presets, Topology};
use pipmcoll_sched::dataflow::{execute, SchedulingPolicy};
use pipmcoll_sched::verify::pattern;

fn bench_recording(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_recording");
    for (nodes, ppn) in [(8usize, 4usize), (32, 18)] {
        let topo = Topology::new(nodes, ppn);
        let spec = CollectiveSpec::Allgather(AllgatherParams { cb: 64 });
        g.bench_with_input(
            BenchmarkId::new("mcoll_allgather", format!("{nodes}x{ppn}")),
            &topo,
            |b, &topo| b.iter(|| build_schedule(LibraryProfile::PipMColl, topo, &spec)),
        );
    }
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_simulation");
    for (nodes, ppn) in [(8usize, 4usize), (32, 18)] {
        let machine = presets::bebop(nodes, ppn);
        let spec = CollectiveSpec::Allgather(AllgatherParams { cb: 64 });
        let sched = build_schedule(LibraryProfile::PipMColl, machine.topo, &spec);
        let cfg = EngineConfig::pip_mcoll(machine);
        g.throughput(Throughput::Elements(sched.total_ops() as u64));
        g.bench_with_input(
            BenchmarkId::new("mcoll_allgather", format!("{nodes}x{ppn}")),
            &sched,
            |b, sched| b.iter(|| simulate(&cfg, sched).expect("simulate")),
        );
    }
    g.finish();
}

fn bench_dataflow(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataflow_interpreter");
    for (nodes, ppn) in [(4usize, 4usize), (8, 4)] {
        let topo = Topology::new(nodes, ppn);
        let spec = CollectiveSpec::Allgather(AllgatherParams { cb: 64 });
        let sched = build_schedule(LibraryProfile::PipMColl, topo, &spec);
        g.throughput(Throughput::Elements(sched.total_ops() as u64));
        g.bench_with_input(
            BenchmarkId::new("mcoll_allgather", format!("{nodes}x{ppn}")),
            &sched,
            |b, sched| {
                b.iter(|| {
                    execute(sched, |r| pattern(r, 64), SchedulingPolicy::RoundRobin)
                        .expect("interpret")
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_recording, bench_simulation, bench_dataflow
}
criterion_main!(benches);
