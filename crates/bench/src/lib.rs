//! # pipmcoll-bench — figure-regeneration harnesses
//!
//! One binary per evaluation figure of the paper (see DESIGN.md §4). Every
//! harness prints an aligned table to stdout and writes
//! `results/figNN_*.csv` plus a JSON sidecar with the run configuration.
//!
//! Scale control: the harnesses default to the paper's 128 nodes × 18
//! ranks/node. Set `PIPMCOLL_NODES` / `PIPMCOLL_PPN` to shrink for smoke
//! runs (the integration tests do this).

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

pub mod microbench;

use pipmcoll_core::{run_collective, CollectiveSpec, LibraryProfile};
use pipmcoll_model::{presets, MachineConfig};

/// Nodes used by the harnesses (paper: 128; override: `PIPMCOLL_NODES`).
pub fn harness_nodes() -> usize {
    std::env::var("PIPMCOLL_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

/// Ranks per node (paper: 18; override: `PIPMCOLL_PPN`).
pub fn harness_ppn() -> usize {
    std::env::var("PIPMCOLL_PPN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(18)
}

/// The paper's machine at the harness scale.
pub fn harness_machine(nodes: usize) -> MachineConfig {
    presets::bebop(nodes, harness_ppn())
}

/// Where result files go.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("PIPMCOLL_RESULTS").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    fs::create_dir_all(&p).expect("create results dir");
    p
}

/// The fabric-perf sections that may contribute to `BENCH_fabric.json`,
/// in emission order (`fabric_sweep` → `"sweep"`, `hotpath_sweep` →
/// `"hotpath"`, `pipmcoll-tune` → `"tune"`).
const BENCH_FABRIC_SECTIONS: [&str; 3] = ["sweep", "hotpath", "tune"];

/// Write `contents` to `path` atomically: write a `.tmp` sibling, then
/// rename over the target. A reader (CI artifact upload, a concurrent
/// bench bin) can never observe a half-written file, and two bins
/// merging into the same root file can't interleave partial writes.
pub fn atomic_write(path: &std::path::Path, contents: &str) {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents).unwrap_or_else(|e| panic!("write {}: {e}", tmp.display()));
    fs::rename(&tmp, path)
        .unwrap_or_else(|e| panic!("rename {} -> {}: {e}", tmp.display(), path.display()));
}

/// Merge one named section into `BENCH_fabric.json` at the repo root
/// (override the location with `PIPMCOLL_BENCH_ROOT`).
///
/// Each emitting bin owns one section (`fabric_sweep` → `"sweep"`,
/// `hotpath_sweep` → `"hotpath"`). The section body is kept as a fragment
/// under the results dir, and the root file is regenerated from every
/// fragment present — so the bins can run in any order or alone and the
/// perf-trajectory file stays complete.
pub fn write_bench_fabric_section(section: &str, body_json: &str) {
    assert!(
        BENCH_FABRIC_SECTIONS.contains(&section),
        "unknown BENCH_fabric section {section:?}"
    );
    let dir = results_dir();
    atomic_write(
        &dir.join(format!("BENCH_fragment_{section}.json")),
        body_json,
    );
    let mut out = String::from("{\n");
    let mut first = true;
    for name in BENCH_FABRIC_SECTIONS {
        let frag = dir.join(format!("BENCH_fragment_{name}.json"));
        if let Ok(body) = fs::read_to_string(&frag) {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!("\"{name}\": {}", body.trim_end()));
        }
    }
    out.push_str("\n}\n");
    let root = std::env::var("PIPMCOLL_BENCH_ROOT").unwrap_or_else(|_| ".".to_string());
    atomic_write(&PathBuf::from(root).join("BENCH_fabric.json"), &out);
}

/// Simulate one collective and return its latency in microseconds.
pub fn measure_us(lib: LibraryProfile, machine: MachineConfig, spec: &CollectiveSpec) -> f64 {
    run_collective(lib, machine, spec)
        .unwrap_or_else(|e| panic!("{} failed: {e}", lib.name()))
        .makespan
        .as_us_f64()
}

/// One plotted line: a label and (x, y) points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// (x, y) points; x is whatever the figure's axis is.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build a series by applying `f` to each x.
    pub fn build(label: &str, xs: &[f64], mut f: impl FnMut(f64) -> f64) -> Self {
        Series {
            label: label.to_string(),
            points: xs.iter().map(|&x| (x, f(x))).collect(),
        }
    }
}

/// A complete figure: axis names plus its series, ready to print/save.
pub struct Figure {
    /// File stem, e.g. `fig09_scatter_small`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis name (first CSV column).
    pub x_name: String,
    /// Y-axis name.
    pub y_name: String,
    /// The lines.
    pub series: Vec<Series>,
}

impl Figure {
    /// Render an aligned text table (x down, one column per series).
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = write!(out, "{:>12}", self.x_name);
        for s in &self.series {
            let _ = write!(out, " {:>16}", s.label);
        }
        let _ = writeln!(out);
        let nx = self.series.first().map_or(0, |s| s.points.len());
        for i in 0..nx {
            let x = self.series[0].points[i].0;
            let _ = write!(out, "{:>12}", format_x(x));
            for s in &self.series {
                debug_assert_eq!(s.points[i].0, x, "series share the x grid");
                let _ = write!(out, " {:>16.3}", s.points[i].1);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// CSV rendering (header `x_name,label1,label2,...`).
    pub fn csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_name);
        for s in &self.series {
            let _ = write!(out, ",{}", s.label);
        }
        let _ = writeln!(out);
        let nx = self.series.first().map_or(0, |s| s.points.len());
        for i in 0..nx {
            let _ = write!(out, "{}", self.series[0].points[i].0);
            for s in &self.series {
                let _ = write!(out, ",{}", s.points[i].1);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Print the table and write `<results>/<id>.csv` + `<id>.json`.
    pub fn emit(&self) {
        println!("{}", self.table());
        let dir = results_dir();
        fs::write(dir.join(format!("{}.csv", self.id)), self.csv()).expect("write csv");
        fs::write(dir.join(format!("{}.json", self.id)), self.meta_json()).expect("write json");
    }

    /// The JSON sidecar describing the run configuration (hand-rolled —
    /// the workspace carries no serialization dependency).
    fn meta_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"id\": {},", json_str(&self.id));
        let _ = writeln!(out, "  \"title\": {},", json_str(&self.title));
        let _ = writeln!(out, "  \"x\": {},", json_str(&self.x_name));
        let _ = writeln!(out, "  \"y\": {},", json_str(&self.y_name));
        let _ = writeln!(out, "  \"nodes\": {},", harness_nodes());
        let _ = writeln!(out, "  \"ppn\": {},", harness_ppn());
        let labels: Vec<String> = self.series.iter().map(|s| json_str(&s.label)).collect();
        let _ = writeln!(out, "  \"series\": [{}]", labels.join(", "));
        out.push('}');
        out
    }

    /// Normalise every series to the first one (the paper's Figs. 9–14 plot
    /// execution time scaled to PiP-MColl's).
    pub fn normalised_to_first(mut self) -> Self {
        let base: Vec<f64> = self.series[0].points.iter().map(|p| p.1).collect();
        for s in &mut self.series {
            for (i, p) in s.points.iter_mut().enumerate() {
                p.1 /= base[i];
            }
        }
        self.y_name = format!("{} (normalised to {})", self.y_name, self.series[0].label);
        self
    }
}

/// Quote and escape a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn format_x(x: f64) -> String {
    if x >= 1024.0 * 1024.0 && (x as u64).is_multiple_of(1024 * 1024) {
        format!("{}M", x as u64 / (1024 * 1024))
    } else if x >= 1024.0 && (x as u64).is_multiple_of(1024) {
        format!("{}k", x as u64 / 1024)
    } else {
        format!("{}", x)
    }
}

/// Sweep a size grid for a set of libraries at the harness scale —
/// the common shape of Figs. 9–14.
pub fn library_sweep(
    id: &str,
    title: &str,
    x_name: &str,
    xs: &[usize],
    libs: &[LibraryProfile],
    spec_of: impl Fn(usize) -> CollectiveSpec,
) -> Figure {
    let machine = harness_machine(harness_nodes());
    let series = libs
        .iter()
        .map(|&lib| {
            eprintln!("  running {} ...", lib.name());
            Series {
                label: lib.name().to_string(),
                points: xs
                    .iter()
                    .map(|&x| (x as f64, measure_us(lib, machine, &spec_of(x))))
                    .collect(),
            }
        })
        .collect();
    Figure {
        id: id.to_string(),
        title: title.to_string(),
        x_name: x_name.to_string(),
        y_name: "time (us)".to_string(),
        series,
    }
}

/// Sweep node counts for a set of libraries at fixed size — the common
/// shape of Figs. 6–8.
pub fn node_sweep(
    id: &str,
    title: &str,
    nodes_grid: &[usize],
    libs: &[LibraryProfile],
    spec: CollectiveSpec,
) -> Figure {
    let series = libs
        .iter()
        .map(|&lib| {
            eprintln!("  running {} ...", lib.name());
            Series {
                label: lib.name().to_string(),
                points: nodes_grid
                    .iter()
                    .map(|&n| (n as f64, measure_us(lib, harness_machine(n), &spec)))
                    .collect(),
            }
        })
        .collect();
    Figure {
        id: id.to_string(),
        title: title.to_string(),
        x_name: "nodes".to_string(),
        y_name: "time (us)".to_string(),
        series,
    }
}

/// The doubling size grids used by the figures.
pub mod grids {
    /// Fig 9: scatter small sizes, 16 B – 1 kB.
    pub fn small_bytes() -> Vec<usize> {
        (0..7).map(|i| 16usize << i).collect()
    }

    /// Fig 10: allgather small sizes, 16 B – 512 B.
    pub fn small_bytes_512() -> Vec<usize> {
        (0..6).map(|i| 16usize << i).collect()
    }

    /// Fig 11: allreduce small counts (doubles), 2 – 128 (16 B – 1 kB).
    pub fn small_counts() -> Vec<usize> {
        (0..7).map(|i| 2usize << i).collect()
    }

    /// Figs 12–13: medium/large sizes, 1 kB – 512 kB.
    pub fn large_bytes() -> Vec<usize> {
        (0..10).map(|i| 1024usize << i).collect()
    }

    /// Fig 14: medium/large counts (doubles), 1 k – 512 k.
    pub fn large_counts() -> Vec<usize> {
        (0..10).map(|i| 1024usize << i).collect()
    }

    /// Figs 6–8: node scaling grid up to `max` (paper: 128).
    pub fn node_grid(max: usize) -> Vec<usize> {
        let mut v = Vec::new();
        let mut n = 2usize;
        while n <= max {
            v.push(n);
            n *= 2;
        }
        if v.last() != Some(&max) && max >= 2 {
            v.push(max);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_match_paper_ranges() {
        assert_eq!(grids::small_bytes(), vec![16, 32, 64, 128, 256, 512, 1024]);
        assert_eq!(grids::large_bytes().last(), Some(&(512 * 1024)));
        assert_eq!(grids::node_grid(128), vec![2, 4, 8, 16, 32, 64, 128]);
        assert_eq!(grids::node_grid(6), vec![2, 4, 6]);
    }

    #[test]
    fn figure_normalisation() {
        let f = Figure {
            id: "t".into(),
            title: "t".into(),
            x_name: "x".into(),
            y_name: "us".into(),
            series: vec![
                Series {
                    label: "a".into(),
                    points: vec![(1.0, 2.0), (2.0, 4.0)],
                },
                Series {
                    label: "b".into(),
                    points: vec![(1.0, 4.0), (2.0, 4.0)],
                },
            ],
        };
        let n = f.normalised_to_first();
        assert_eq!(n.series[0].points, vec![(1.0, 1.0), (2.0, 1.0)]);
        assert_eq!(n.series[1].points, vec![(1.0, 2.0), (2.0, 1.0)]);
    }

    #[test]
    fn table_and_csv_render() {
        let f = Figure {
            id: "x".into(),
            title: "demo".into(),
            x_name: "bytes".into(),
            y_name: "us".into(),
            series: vec![Series {
                label: "lib".into(),
                points: vec![(16.0, 1.5)],
            }],
        };
        assert!(f.table().contains("demo"));
        assert!(f.csv().starts_with("bytes,lib"));
    }

    #[test]
    fn x_formatting() {
        assert_eq!(format_x(16.0), "16");
        assert_eq!(format_x(2048.0), "2k");
        assert_eq!(format_x((2 * 1024 * 1024) as f64), "2M");
    }
}
