//! A dependency-free micro-benchmark harness (the workspace builds without
//! Criterion, which is unavailable in hermetic environments).
//!
//! Usage mirrors the subset of Criterion the benches need: named groups,
//! per-input benchmarks, custom timers for harnesses that measure inside a
//! thread pool, and optional byte/element throughput. Results print as an
//! aligned table:
//!
//! ```text
//! group/bench/input          12.345 us/iter   518.2 MiB/s   (20 iters)
//! ```
//!
//! Set `PIPMCOLL_BENCH_MS` (default 200) to control per-benchmark target
//! measuring time; `PIPMCOLL_BENCH_MS=1` makes a smoke run.

use std::time::{Duration, Instant};

/// Per-benchmark measuring budget.
fn target_time() -> Duration {
    let ms = std::env::var("PIPMCOLL_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Payload bytes processed per iteration.
    Bytes(u64),
    /// Logical elements (ops, events) processed per iteration.
    Elements(u64),
}

/// A named collection of benchmarks; prints a header when created.
pub struct Group {
    name: String,
    throughput: Option<Throughput>,
}

impl Group {
    /// Start a group named `name`.
    pub fn new(name: &str) -> Self {
        println!("\n== {name}");
        Group {
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Benchmark `f` (one call = one iteration).
    pub fn bench(&mut self, id: &str, mut f: impl FnMut()) {
        self.bench_custom(id, |iters| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed()
        });
    }

    /// Benchmark with a custom timer: `f(iters)` runs `iters` iterations
    /// and returns their total wall-clock time (Criterion's `iter_custom`).
    pub fn bench_custom(&mut self, id: &str, mut f: impl FnMut(u64) -> Duration) {
        let budget = target_time();
        // Calibrate: grow the iteration count until one batch fills ~1/4
        // of the budget, then measure with the remaining budget.
        let mut iters: u64 = 1;
        let mut elapsed = f(iters);
        while elapsed < budget / 4 && iters < 1 << 20 {
            iters = iters.saturating_mul(2);
            elapsed = f(iters);
        }
        let mut total = elapsed;
        let mut total_iters = iters;
        let deadline = Instant::now() + budget;
        while Instant::now() < deadline && total_iters < 1 << 24 {
            total += f(iters);
            total_iters += iters;
        }
        let per_iter = total.as_secs_f64() / total_iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(b)) => {
                format!("{:>10.1} MiB/s", b as f64 / per_iter / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(e)) => {
                format!("{:>10.1} Kelem/s", e as f64 / per_iter / 1e3)
            }
            None => String::new(),
        };
        println!(
            "{:<44} {:>12.3} us/iter {rate}   ({total_iters} iters)",
            format!("{}/{id}", self.name),
            per_iter * 1e6
        );
    }
}

/// Prevent the optimizer from discarding a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("PIPMCOLL_BENCH_MS", "1");
        let mut g = Group::new("selftest");
        let mut n = 0u64;
        g.bench("count", || n = black_box(n + 1));
        g.throughput(Throughput::Bytes(1024));
        g.bench_custom("custom", |iters| {
            let t0 = Instant::now();
            for i in 0..iters {
                black_box(i);
            }
            t0.elapsed()
        });
        assert!(n > 0);
    }
}
