//! Figure 8: MPI_Allreduce vs. node count at 16 and 1 k double counts,
//! PiP-MColl vs. the PiP-MPICH baseline.

use pipmcoll_bench::{grids, harness_nodes, node_sweep};
use pipmcoll_core::{AllreduceParams, CollectiveSpec, LibraryProfile};

fn main() {
    let libs = [LibraryProfile::PipMColl, LibraryProfile::PipMpich];
    let grid = grids::node_grid(harness_nodes());
    for (sub, count) in [("a", 16usize), ("b", 1024)] {
        node_sweep(
            &format!("fig08{sub}_allreduce_nodes_{count}d"),
            &format!("MPI_Allreduce node scaling, {count} doubles (paper Fig. 8{sub})"),
            &grid,
            &libs,
            CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(count)),
        )
        .emit();
    }
}
