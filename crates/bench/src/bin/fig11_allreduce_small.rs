//! Figure 11: MPI_Allreduce with small double counts (2 – 128) at full
//! scale, all five libraries, normalised to PiP-MColl.

use pipmcoll_bench::{grids, library_sweep};
use pipmcoll_core::{AllreduceParams, CollectiveSpec, LibraryProfile};

fn main() {
    library_sweep(
        "fig11_allreduce_small",
        "MPI_Allreduce, small double counts, 128 nodes (paper Fig. 11)",
        "doubles",
        &grids::small_counts(),
        &LibraryProfile::FIGURE_SET,
        |count| CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(count)),
    )
    .normalised_to_first()
    .emit();
}
