//! Hot-path latency sweep: round-trip ping-pong over the real TCP
//! loopback fabric, k concurrent pairs × message size, recording every
//! round trip in a latency histogram — the per-message cost view that
//! complements `fabric_sweep`'s throughput view.
//!
//! Also reports the frame-pool hit rate after each point, so regressions
//! in the zero-allocation eager path show up as a falling hit ratio long
//! before they show up in throughput.
//!
//! Writes `results/hotpath_sweep.json` and merges the `hotpath` section
//! of `BENCH_fabric.json` at the repo root. Scale knob:
//! `PIPMCOLL_HOTPATH_MSGS` (round trips per pair, default 2000).

use std::fmt::Write as _;
use std::sync::{Arc, Barrier};
use std::time::Instant;

use pipmcoll_bench::{results_dir, write_bench_fabric_section};
use pipmcoll_fabric::{Fabric, LatencyHist, LatencySnapshot, TcpConfig, TcpFabric};
use pipmcoll_model::Topology;

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be a positive integer, got {v:?}")),
    }
}

/// One measured point: `k` pinger threads on node 0 each run `n` round
/// trips against an echo partner on node 1, every RTT recorded.
struct Point {
    lat: LatencySnapshot,
    mmsg_per_s: f64,
    pool_hit_pct: f64,
}

fn run_point(k: usize, size: usize, n: usize) -> Point {
    let topo = Topology::new(2, k);
    let fabric = Arc::new(
        TcpFabric::connect(
            topo,
            TcpConfig {
                lanes: k,
                ..TcpConfig::default()
            },
        )
        .expect("loopback fabric"),
    );
    let hist = LatencyHist::new();
    let start = Barrier::new(2 * k + 1);
    let done = Barrier::new(k + 1);
    let payload = vec![0x5au8; size];
    let mut elapsed = 0.0;
    std::thread::scope(|s| {
        let start = &start;
        let done = &done;
        let hist = &hist;
        let payload = &payload;
        for p in 0..k {
            let fab = Arc::clone(&fabric);
            s.spawn(move || {
                start.wait();
                for _ in 0..n {
                    let t0 = Instant::now();
                    fab.send((p, k + p, 0), payload.clone()).expect("ping");
                    let echo = fab.recv((k + p, p, 1)).expect("pong");
                    hist.record(t0.elapsed());
                    assert_eq!(echo.len(), size);
                }
                done.wait();
            });
            let fab = Arc::clone(&fabric);
            s.spawn(move || {
                start.wait();
                for _ in 0..n {
                    let m = fab.recv((p, k + p, 0)).expect("echo recv");
                    fab.send((k + p, p, 1), m).expect("echo send");
                }
            });
        }
        start.wait();
        let t0 = Instant::now();
        done.wait(); // every pinger has its last echo back
        elapsed = t0.elapsed().as_secs_f64();
    });
    let ps = fabric.pool_stats();
    let served = ps.hits + ps.misses;
    Point {
        lat: hist.snapshot(),
        // 2 messages per round trip per pair.
        mmsg_per_s: (2 * k * n) as f64 / elapsed.max(1e-9) / 1e6,
        pool_hit_pct: if served == 0 {
            0.0
        } else {
            100.0 * ps.hits as f64 / served as f64
        },
    }
}

fn main() {
    let n = env_usize("PIPMCOLL_HOTPATH_MSGS", 2000);
    let lanes_grid = [1usize, 2, 4, 8];
    let sizes: [(usize, &str); 3] = [(64, "64B"), (1024, "1KiB"), (16 * 1024, "16KiB")];

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"id\": \"hotpath_sweep\",");
    let _ = writeln!(out, "  \"backend\": \"tcp-loopback\",");
    let _ = writeln!(out, "  \"round_trips_per_pair\": {n},");
    let _ = writeln!(
        out,
        "  \"lanes\": [{}],",
        lanes_grid
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  \"series\": [");
    println!("# hotpath_sweep — ping-pong RTT percentiles (µs) and pool hit rate");
    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>12} {:>10}",
        "size", "k", "p50_us", "p99_us", "Mmsg/s", "pool_hit%"
    );
    for (si, &(size, label)) in sizes.iter().enumerate() {
        let mut p50 = Vec::new();
        let mut p99 = Vec::new();
        let mut rate = Vec::new();
        let mut hit = Vec::new();
        for &k in &lanes_grid {
            let pt = run_point(k, size, n);
            // "No samples" renders as `null`/`-`, never a fake 0.
            let show = |p: Option<u64>| p.map_or_else(|| "-".to_string(), |u| u.to_string());
            let json = |p: Option<u64>| p.map_or_else(|| "null".to_string(), |u| u.to_string());
            println!(
                "{:>8} {:>6} {:>10} {:>10} {:>12.3} {:>10.1}",
                label,
                k,
                show(pt.lat.p50_us),
                show(pt.lat.p99_us),
                pt.mmsg_per_s,
                pt.pool_hit_pct
            );
            p50.push(json(pt.lat.p50_us));
            p99.push(json(pt.lat.p99_us));
            rate.push(format!("{:.3}", pt.mmsg_per_s));
            hit.push(format!("{:.1}", pt.pool_hit_pct));
        }
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"label\": \"{label}\",");
        let _ = writeln!(out, "      \"rtt_p50_us\": [{}],", p50.join(", "));
        let _ = writeln!(out, "      \"rtt_p99_us\": [{}],", p99.join(", "));
        let _ = writeln!(out, "      \"mmsg_per_s\": [{}],", rate.join(", "));
        let _ = writeln!(out, "      \"pool_hit_pct\": [{}]", hit.join(", "));
        let _ = writeln!(out, "    }}{}", if si + 1 < sizes.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push('}');

    std::fs::write(results_dir().join("hotpath_sweep.json"), &out).expect("write json");
    write_bench_fabric_section("hotpath", &out);
}
