//! Figure 10: MPI_Allgather with small per-rank sizes (16 B – 512 B) at
//! full scale, all five libraries, normalised to PiP-MColl. The paper's
//! headline 4.6x happens here (64 B).

use pipmcoll_bench::{grids, library_sweep};
use pipmcoll_core::{AllgatherParams, CollectiveSpec, LibraryProfile};

fn main() {
    library_sweep(
        "fig10_allgather_small",
        "MPI_Allgather, small message sizes, 128 nodes (paper Fig. 10)",
        "bytes",
        &grids::small_bytes_512(),
        &LibraryProfile::FIGURE_SET,
        |cb| CollectiveSpec::Allgather(AllgatherParams { cb }),
    )
    .normalised_to_first()
    .emit();
}
