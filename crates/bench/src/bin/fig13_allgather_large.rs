//! Figure 13: MPI_Allgather with medium/large sizes (1 kB – 512 kB) at
//! full scale, including the PiP-MColl-small ablation line (the
//! small-message algorithm used at every size). PiP-MColl switches to the
//! ring algorithm at 64 kB.

use pipmcoll_bench::{grids, library_sweep};
use pipmcoll_core::{AllgatherParams, CollectiveSpec, LibraryProfile};

fn main() {
    let libs = [
        LibraryProfile::PipMColl,
        LibraryProfile::PipMCollSmall,
        LibraryProfile::PipMpich,
        LibraryProfile::IntelMpi,
        LibraryProfile::OpenMpi,
        LibraryProfile::Mvapich2,
    ];
    library_sweep(
        "fig13_allgather_large",
        "MPI_Allgather, medium/large message sizes, 128 nodes (paper Fig. 13)",
        "bytes",
        &grids::large_bytes(),
        &libs,
        |cb| CollectiveSpec::Allgather(AllgatherParams { cb }),
    )
    .normalised_to_first()
    .emit();
}
