//! Figure 6: MPI_Scatter vs. node count at 16 B and 1 kB per rank,
//! PiP-MColl vs. the PiP-MPICH baseline.

use pipmcoll_bench::{grids, harness_nodes, node_sweep};
use pipmcoll_core::{CollectiveSpec, LibraryProfile, ScatterParams};

fn main() {
    let libs = [LibraryProfile::PipMColl, LibraryProfile::PipMpich];
    let grid = grids::node_grid(harness_nodes());
    for (sub, cb) in [("a", 16usize), ("b", 1024)] {
        node_sweep(
            &format!("fig06{sub}_scatter_nodes_{cb}B"),
            &format!("MPI_Scatter node scaling, {cb} B per rank (paper Fig. 6{sub})"),
            &grid,
            &libs,
            CollectiveSpec::Scatter(ScatterParams { cb, root: 0 }),
        )
        .emit();
    }
}
