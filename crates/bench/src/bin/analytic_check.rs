//! A1: cross-check the discrete-event engine against the paper's §III
//! closed-form runtimes for the PiP-MColl algorithms. The two models differ
//! (the DES prices contention the closed forms ignore), so the check
//! reports ratios and trend agreement rather than demanding equality.

use pipmcoll_bench::{harness_machine, harness_nodes, harness_ppn, measure_us};
use pipmcoll_core::{
    AllgatherParams, AllreduceParams, CollectiveSpec, LibraryProfile, ScatterParams,
};
use pipmcoll_model::analytic;

fn main() {
    let nodes = harness_nodes();
    let ppn = harness_ppn();
    let machine = harness_machine(nodes);
    let h = machine.hockney();
    let lib = LibraryProfile::PipMColl;

    println!("# analytic_check — engine vs. paper closed forms ({nodes} nodes x {ppn} ppn)");
    println!(
        "{:>24} {:>10} {:>14} {:>14} {:>8}",
        "experiment", "size", "analytic_us", "engine_us", "ratio"
    );

    let mut rows: Vec<(String, usize, f64, f64)> = Vec::new();
    for cb in [64usize, 1024, 65536] {
        let a = analytic::scatter_total(&h, cb as u64, ppn, nodes).as_us_f64();
        let e = measure_us(
            lib,
            machine,
            &CollectiveSpec::Scatter(ScatterParams { cb, root: 0 }),
        );
        rows.push((format!("scatter cb={cb}"), cb, a, e));
    }
    for cb in [64usize, 1024] {
        let a = analytic::allgather_small_total(&h, cb as u64, ppn, nodes).as_us_f64();
        let e = measure_us(
            lib,
            machine,
            &CollectiveSpec::Allgather(AllgatherParams { cb }),
        );
        rows.push((format!("allgather-small cb={cb}"), cb, a, e));
    }
    {
        let cb = 128 * 1024usize;
        let a = analytic::allgather_large_total(&h, cb as u64, ppn, nodes).as_us_f64();
        let e = measure_us(
            lib,
            machine,
            &CollectiveSpec::Allgather(AllgatherParams { cb }),
        );
        rows.push((format!("allgather-large cb={cb}"), cb, a, e));
    }
    for count in [16usize, 512] {
        let cb = count * 8;
        let a = analytic::allreduce_small_total(&h, cb as u64, ppn, nodes).as_us_f64();
        let e = measure_us(
            lib,
            machine,
            &CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(count)),
        );
        rows.push((format!("allreduce-small n={count}"), cb, a, e));
    }
    {
        let count = 65536usize;
        let cb = count * 8;
        let a = analytic::allreduce_large_total(&h, cb as u64, ppn, nodes).as_us_f64();
        let e = measure_us(
            lib,
            machine,
            &CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(count)),
        );
        rows.push((format!("allreduce-large n={count}"), cb, a, e));
    }

    for (name, size, a, e) in &rows {
        println!(
            "{:>24} {:>10} {:>14.3} {:>14.3} {:>8.2}",
            name,
            size,
            a,
            e,
            e / a
        );
    }
}
