//! Collective storm: hundreds of concurrent small allreduces across
//! tens of jobs over one shared TCP-loopback fabric, versus the same
//! load serialized one collective at a time (`max_inflight = 1`).
//!
//! This is the service crate's thesis measurement: with real delivery
//! latency underneath, a single scheduler thread interleaving phases of
//! many in-flight collectives overlaps their wire time, so the
//! submission-to-completion p99 collapses relative to running the same
//! queue one at a time. The bench also checks the DRR fairness
//! invariant: with every job submitting the same load, no job's p99 may
//! exceed 3× the median job's p99.
//!
//! Knobs: `PIPMCOLL_SVC_JOBS` (default 16), `PIPMCOLL_STORM_COLLS`
//! (collectives per job, default 16), `PIPMCOLL_STORM_WORLD` (ranks,
//! default 8), `PIPMCOLL_STORM_ELEMS` (i32 elements per rank, default
//! 16). With `PIPMCOLL_STORM_GATE=1` the process exits nonzero unless
//! concurrent p99 ≤ serialized p99 and the fairness bound holds (zero
//! failed requests is enforced unconditionally).
//!
//! Writes `results/storm.json` and `BENCH_svc.json` at the repo root
//! (override with `PIPMCOLL_BENCH_ROOT`), both atomically.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use pipmcoll_bench::{atomic_write, results_dir};
use pipmcoll_fabric::{Fabric, TcpConfig, TcpFabric};
use pipmcoll_model::{Datatype, ReduceOp, Topology};
use pipmcoll_svc::{Request, Svc, SvcConfig};

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be a positive integer, got {v:?}")),
    }
}

struct StormLoad {
    jobs: usize,
    colls_per_job: usize,
    world: usize,
    elems: usize,
}

struct JobOutcome {
    completed: u64,
    failed: u64,
    deferred: u64,
    p50_us: Option<u64>,
    p99_us: Option<u64>,
}

struct RunResult {
    wall_ms: f64,
    wrong_results: u64,
    jobs: Vec<JobOutcome>,
}

impl RunResult {
    fn failed(&self) -> u64 {
        self.jobs.iter().map(|j| j.failed).sum::<u64>() + self.wrong_results
    }

    /// Aggregate p99: the worst job's p99 (client-observed tail).
    fn p99_us(&self) -> u64 {
        self.jobs.iter().filter_map(|j| j.p99_us).max().unwrap_or(0)
    }

    /// Median of the per-job p50s.
    fn p50_us(&self) -> u64 {
        let mut v: Vec<u64> = self.jobs.iter().filter_map(|j| j.p50_us).collect();
        v.sort_unstable();
        v.get(v.len() / 2).copied().unwrap_or(0)
    }

    /// Median of the per-job p99s (the fairness reference point).
    fn median_job_p99_us(&self) -> u64 {
        let mut v: Vec<u64> = self.jobs.iter().filter_map(|j| j.p99_us).collect();
        v.sort_unstable();
        v.get(v.len() / 2).copied().unwrap_or(0)
    }
}

/// Run the whole storm once: every job submits its full queue up front,
/// then everything is waited on. `max_inflight = None` is the
/// concurrent service, `Some(1)` the serialized baseline.
fn run_storm(load: &StormLoad, max_inflight: Option<usize>) -> RunResult {
    // Two "nodes" over loopback so half the rank pairs cross real TCP.
    assert!(
        load.world >= 2 && load.world.is_multiple_of(2),
        "world must be even"
    );
    let topo = Topology::new(2, load.world / 2);
    let fabric: Arc<dyn Fabric> =
        Arc::new(TcpFabric::connect(topo, TcpConfig::default()).expect("loopback fabric"));
    let cfg = SvcConfig {
        max_inflight,
        ..SvcConfig::new(load.world)
    };
    let svc = Svc::new(fabric, cfg).expect("service starts");
    let jobs: Vec<_> = (0..load.jobs).map(|_| svc.job().expect("job")).collect();

    let t0 = Instant::now();
    let mut launched: Vec<(Request, i64)> = Vec::new();
    for (ji, job) in jobs.iter().enumerate() {
        for k in 0..load.colls_per_job {
            // Rank r contributes seed + r per element; the reduced value
            // is the same for every element and every rank.
            let seed = (ji * 1000 + k) as i32;
            let inputs: Vec<Vec<u8>> = (0..load.world)
                .map(|r| {
                    std::iter::repeat_n(seed + r as i32, load.elems)
                        .flat_map(|v| v.to_le_bytes())
                        .collect()
                })
                .collect();
            let want: i64 = (0..load.world as i64).map(|r| seed as i64 + r).sum();
            launched.push((job.iallreduce(Datatype::Int32, ReduceOp::Sum, inputs), want));
        }
    }
    let mut wrong = 0u64;
    for (req, want) in launched {
        match req.wait() {
            Err(_) => {} // counted via the per-job failed counter
            Ok(out) => {
                for rank_out in &out {
                    let ok = rank_out
                        .chunks_exact(4)
                        .all(|c| i64::from(i32::from_le_bytes(c.try_into().unwrap())) == want);
                    if !ok || rank_out.len() != load.elems * 4 {
                        wrong += 1;
                    }
                }
            }
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let stats = svc.stats();
    RunResult {
        wall_ms,
        wrong_results: wrong,
        jobs: stats
            .jobs
            .iter()
            .map(|j| JobOutcome {
                completed: j.completed,
                failed: j.failed,
                deferred: j.deferred,
                p50_us: j.latency.p50_us,
                p99_us: j.latency.p99_us,
            })
            .collect(),
    }
}

fn mode_json(name: &str, r: &RunResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "  \"{name}\": {{");
    let _ = writeln!(out, "    \"wall_ms\": {:.3},", r.wall_ms);
    let _ = writeln!(out, "    \"p50_us\": {},", r.p50_us());
    let _ = writeln!(out, "    \"p99_us\": {},", r.p99_us());
    let _ = writeln!(out, "    \"median_job_p99_us\": {},", r.median_job_p99_us());
    let _ = writeln!(out, "    \"failed\": {},", r.failed());
    let _ = writeln!(
        out,
        "    \"deferred\": {},",
        r.jobs.iter().map(|j| j.deferred).sum::<u64>()
    );
    let p99s: Vec<String> = r
        .jobs
        .iter()
        .map(|j| {
            j.p99_us
                .map_or_else(|| "null".to_string(), |u| u.to_string())
        })
        .collect();
    let _ = writeln!(out, "    \"job_p99_us\": [{}]", p99s.join(", "));
    out.push_str("  }");
    out
}

fn main() {
    let load = StormLoad {
        jobs: env_usize("PIPMCOLL_SVC_JOBS", 16),
        colls_per_job: env_usize("PIPMCOLL_STORM_COLLS", 16),
        world: env_usize("PIPMCOLL_STORM_WORLD", 8),
        elems: env_usize("PIPMCOLL_STORM_ELEMS", 16),
    };
    let total = load.jobs * load.colls_per_job;
    println!(
        "# storm — {} jobs × {} iallreduce(world={}, {} i32/rank) = {} collectives",
        load.jobs, load.colls_per_job, load.world, load.elems, total
    );

    eprintln!("  running concurrent ...");
    let conc = run_storm(&load, None);
    eprintln!("  running serialized (max_inflight=1) ...");
    let ser = run_storm(&load, Some(1));

    println!(
        "{:>14} {:>10} {:>10} {:>12} {:>8}",
        "mode", "p50_us", "p99_us", "wall_ms", "failed"
    );
    for (name, r) in [("concurrent", &conc), ("serialized", &ser)] {
        println!(
            "{:>14} {:>10} {:>10} {:>12.1} {:>8}",
            name,
            r.p50_us(),
            r.p99_us(),
            r.wall_ms,
            r.failed()
        );
    }
    let fairness_ok = conc
        .jobs
        .iter()
        .filter_map(|j| j.p99_us)
        .all(|p| p <= conc.median_job_p99_us().saturating_mul(3));
    println!(
        "p99 speedup serialized/concurrent: {:.2}x; fairness (max job p99 <= 3x median): {}",
        ser.p99_us() as f64 / conc.p99_us().max(1) as f64,
        if fairness_ok { "ok" } else { "VIOLATED" }
    );

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"id\": \"storm\",");
    let _ = writeln!(out, "  \"backend\": \"tcp-loopback\",");
    let _ = writeln!(out, "  \"jobs\": {},", load.jobs);
    let _ = writeln!(out, "  \"colls_per_job\": {},", load.colls_per_job);
    let _ = writeln!(out, "  \"world\": {},", load.world);
    let _ = writeln!(out, "  \"elems_per_rank\": {},", load.elems);
    out.push_str(&mode_json("concurrent", &conc));
    out.push_str(",\n");
    out.push_str(&mode_json("serialized", &ser));
    out.push_str("\n}\n");
    atomic_write(&results_dir().join("storm.json"), &out);
    let root = std::env::var("PIPMCOLL_BENCH_ROOT").unwrap_or_else(|_| ".".to_string());
    atomic_write(&PathBuf::from(root).join("BENCH_svc.json"), &out);

    // Correctness is unconditional: a storm with failed or wrong
    // results is a broken service, whatever the latency numbers say.
    assert_eq!(conc.failed(), 0, "concurrent storm had failed requests");
    assert_eq!(ser.failed(), 0, "serialized storm had failed requests");
    assert_eq!(
        conc.jobs.iter().map(|j| j.completed).sum::<u64>(),
        total as u64
    );

    if std::env::var("PIPMCOLL_STORM_GATE").as_deref() == Ok("1") {
        assert!(
            conc.p99_us() <= ser.p99_us(),
            "gate: concurrent p99 {}us worse than serialized {}us",
            conc.p99_us(),
            ser.p99_us()
        );
        assert!(fairness_ok, "gate: DRR fairness bound violated");
        println!("gates passed");
    }
}
