//! Ablation studies for the design choices DESIGN.md §5 calls out:
//!
//! 1. **Fan-out degree** — how many of the P local ranks act as internode
//!    objects in the small-message allgather (k = 1 is the classic
//!    single-leader design; k = P is PiP-MColl).
//! 2. **Overlap** — the large-message allgather with the intranode
//!    broadcast overlapped vs. serialised.
//! 3. **Mechanism swap** — the PiP-MColl algorithms priced over POSIX /
//!    CMA / LiMiC / XPMEM instead of PiP, separating the algorithmic win
//!    from the mechanism win.
//! 4. **Switch-points** — PiP-MColl's published 64 kB / 8 k-count
//!    thresholds vs. the simulated crossovers (also see the `tuner`
//!    example).

use pipmcoll_bench::{harness_machine, harness_nodes, harness_ppn, Figure, Series};
use pipmcoll_core::mcoll::{allgather_mcoll_large_opts, allgather_mcoll_small_k};
use pipmcoll_core::{AllgatherParams, LibraryProfile};
use pipmcoll_engine::{simulate, EngineConfig};
use pipmcoll_model::Mechanism;
use pipmcoll_sched::record_with_sizes;

fn simulate_allgather(
    cfg: &EngineConfig,
    cb: usize,
    algo: impl FnMut(&mut pipmcoll_sched::TraceComm),
) -> f64 {
    let topo = cfg.machine.topo;
    let p = AllgatherParams { cb };
    let sched = record_with_sizes(topo, p.buf_sizes(topo), algo);
    sched.validate().expect("valid schedule");
    simulate(cfg, &sched)
        .expect("simulate")
        .makespan
        .as_us_f64()
}

fn main() {
    let nodes = harness_nodes().min(64); // ablations don't need full scale
    let machine = harness_machine(nodes);
    let ppn = harness_ppn();
    let cfg = EngineConfig::pip_mcoll(machine);

    // --- 1. Fan-out degree sweep (small allgather, 64 B). ----------------
    let degrees: Vec<usize> = {
        let mut v = vec![1usize];
        let mut k = 2;
        while k < ppn {
            v.push(k);
            k *= 2;
        }
        v.push(ppn);
        v
    };
    let mut fan_points = Vec::new();
    for &k in &degrees {
        let p = AllgatherParams { cb: 64 };
        let us = simulate_allgather(&cfg, 64, |c| allgather_mcoll_small_k(c, &p, k));
        fan_points.push((k as f64, us));
    }
    Figure {
        id: "ablation_fanout".into(),
        title: format!("fan-out degree k (allgather 64 B, {nodes} nodes x {ppn} ppn)"),
        x_name: "objects".into(),
        y_name: "time (us)".into(),
        series: vec![Series {
            label: "mcoll_small_k".into(),
            points: fan_points,
        }],
    }
    .emit();

    // --- 2. Overlap on/off (large allgather across sizes). ---------------
    let sizes = [64 * 1024usize, 128 * 1024, 256 * 1024];
    let mut on = Vec::new();
    let mut off = Vec::new();
    for &cb in &sizes {
        let p = AllgatherParams { cb };
        on.push((
            cb as f64,
            simulate_allgather(&cfg, cb, |c| allgather_mcoll_large_opts(c, &p, true)),
        ));
        off.push((
            cb as f64,
            simulate_allgather(&cfg, cb, |c| allgather_mcoll_large_opts(c, &p, false)),
        ));
    }
    Figure {
        id: "ablation_overlap".into(),
        title: format!("intra/internode overlap (ring allgather, {nodes} nodes)"),
        x_name: "bytes".into(),
        y_name: "time (us)".into(),
        series: vec![
            Series {
                label: "overlap".into(),
                points: on,
            },
            Series {
                label: "no_overlap".into(),
                points: off,
            },
        ],
    }
    .emit();

    // --- 3. Mechanism swap (small allgather, 64 B and 4 KiB). ------------
    let mut series = Vec::new();
    for mech in Mechanism::ALL {
        let cfg = EngineConfig::pip_mcoll(machine).with_shared_mech(mech);
        let mut pts = Vec::new();
        for cb in [64usize, 4096] {
            let p = AllgatherParams { cb };
            pts.push((
                cb as f64,
                simulate_allgather(&cfg, cb, |c| LibraryProfile::PipMColl.allgather(c, &p)),
            ));
        }
        series.push(Series {
            label: mech.name().into(),
            points: pts,
        });
    }
    Figure {
        id: "ablation_mechanism".into(),
        title: format!("MColl algorithms over each shared-memory mechanism ({nodes} nodes)"),
        x_name: "bytes".into(),
        y_name: "time (us)".into(),
        series,
    }
    .emit();
}
