//! Figure 1: internode point-to-point message rate (4 KiB) and throughput
//! (128 KiB) vs. number of concurrent sender/receiver pairs on two nodes —
//! the hardware premise of the multi-object design.

use pipmcoll_bench::{harness_ppn, Figure, Series};
use pipmcoll_engine::pt2pt::sweep_pairs;
use pipmcoll_engine::EngineConfig;
use pipmcoll_model::presets;

fn main() {
    let ppn = harness_ppn();
    let cfg = EngineConfig::pip_mcoll(presets::bebop(2, ppn));

    let rate = sweep_pairs(&cfg, 4096, 60).expect("4 KiB sweep");
    Figure {
        id: "fig01a_msgrate_4k".into(),
        title: "pt2pt message rate, 4 KiB messages, 2 nodes (paper Fig. 1a)".into(),
        x_name: "pairs".into(),
        y_name: "Mmsg/s".into(),
        series: vec![Series {
            label: "msg_rate_Mmsgs".into(),
            points: rate
                .iter()
                .map(|p| (p.pairs as f64, p.msg_rate / 1e6))
                .collect(),
        }],
    }
    .emit();

    let tp = sweep_pairs(&cfg, 128 * 1024, 12).expect("128 KiB sweep");
    Figure {
        id: "fig01b_throughput_128k".into(),
        title: "pt2pt throughput, 128 KiB messages, 2 nodes (paper Fig. 1b)".into(),
        x_name: "pairs".into(),
        y_name: "GB/s".into(),
        series: vec![Series {
            label: "throughput_GBs".into(),
            points: tp
                .iter()
                .map(|p| (p.pairs as f64, p.throughput / 1e9))
                .collect(),
        }],
    }
    .emit();
}
