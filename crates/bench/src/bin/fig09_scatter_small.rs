//! Figure 9: MPI_Scatter with small per-rank sizes (16 B – 1 kB) at full
//! scale, all five libraries, normalised to PiP-MColl.

use pipmcoll_bench::{grids, library_sweep};
use pipmcoll_core::{CollectiveSpec, LibraryProfile, ScatterParams};

fn main() {
    library_sweep(
        "fig09_scatter_small",
        "MPI_Scatter, small message sizes, 128 nodes (paper Fig. 9)",
        "bytes",
        &grids::small_bytes(),
        &LibraryProfile::FIGURE_SET,
        |cb| CollectiveSpec::Scatter(ScatterParams { cb, root: 0 }),
    )
    .normalised_to_first()
    .emit();
}
