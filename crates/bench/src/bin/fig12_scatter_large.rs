//! Figure 12: MPI_Scatter with medium/large sizes (1 kB – 512 kB) at full
//! scale — PiP-MColl uses the same algorithm at every size (§IV-D1).

use pipmcoll_bench::{grids, library_sweep};
use pipmcoll_core::{CollectiveSpec, LibraryProfile, ScatterParams};

fn main() {
    library_sweep(
        "fig12_scatter_large",
        "MPI_Scatter, medium/large message sizes, 128 nodes (paper Fig. 12)",
        "bytes",
        &grids::large_bytes(),
        &LibraryProfile::FIGURE_SET,
        |cb| CollectiveSpec::Scatter(ScatterParams { cb, root: 0 }),
    )
    .normalised_to_first()
    .emit();
}
