//! Fabric lane sweep: drive the real TCP loopback transport with 8
//! concurrent sender/receiver pairs while sweeping the number of striped
//! lanes k ∈ {1..8} × message size — the socket-backed analogue of the
//! paper's Fig. 1 (message rate / throughput vs. concurrent objects).
//!
//! Writes `results/fabric_sweep.csv` (throughput table) and
//! `results/fabric_sweep.json` (full series incl. message rates, plus a
//! `policy_series` comparing the modulo and stripe lane policies at the
//! message-rate and bandwidth extremes). Scale knobs:
//! `PIPMCOLL_FABRIC_MSGS` (max messages per pair, default 20000),
//! `PIPMCOLL_FABRIC_TRIALS` (best-of trials per point, default 3).

use std::fmt::Write as _;
use std::sync::{Arc, Barrier};
use std::time::Instant;

use pipmcoll_bench::{results_dir, write_bench_fabric_section, Figure, Series};
use pipmcoll_fabric::{Fabric, LanePolicy, LatencySnapshot, TcpConfig, TcpFabric};
use pipmcoll_model::Topology;

const PAIRS: usize = 8;

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be a positive integer, got {v:?}")),
    }
}

/// One timed trial: `PAIRS` senders on node 0 each blast `n_msgs`
/// messages of `size` bytes to their partner on node 1. Returns elapsed
/// seconds from the start barrier until the last receiver has its last
/// message — fabric setup and thread spawn are outside the window.
fn trial(lanes: usize, policy: LanePolicy, size: usize, n_msgs: usize) -> (f64, LatencySnapshot) {
    let topo = Topology::new(2, PAIRS);
    let fabric = Arc::new(
        TcpFabric::connect(
            topo,
            TcpConfig {
                lanes,
                lane_policy: policy,
                ..TcpConfig::default()
            },
        )
        .expect("loopback fabric"),
    );
    let start = Barrier::new(2 * PAIRS + 1);
    let done = Barrier::new(PAIRS + 1);
    let payload = vec![0xa5u8; size];
    let mut elapsed = 0.0;
    std::thread::scope(|s| {
        let start = &start;
        let done = &done;
        let payload = &payload;
        for p in 0..PAIRS {
            let fab = Arc::clone(&fabric);
            s.spawn(move || {
                start.wait();
                for _ in 0..n_msgs {
                    fab.send((p, PAIRS + p, 0), payload.clone())
                        .expect("bench send");
                }
            });
            let fab = Arc::clone(&fabric);
            s.spawn(move || {
                start.wait();
                for _ in 0..n_msgs {
                    let m = fab.recv((p, PAIRS + p, 0)).expect("bench recv");
                    assert_eq!(m.len(), size);
                }
                done.wait();
            });
        }
        start.wait();
        let t0 = Instant::now();
        done.wait(); // every receiver has drained its pair's stream
        elapsed = t0.elapsed().as_secs_f64();
    });
    (elapsed, fabric.stats().ack_rtt)
}

/// Best-of-`trials` measurement, returning (Mmsg/s, MB/s) plus the
/// ack-RTT percentile snapshot of the fastest trial.
fn measure(
    lanes: usize,
    policy: LanePolicy,
    size: usize,
    n_msgs: usize,
    trials: usize,
) -> (f64, f64, LatencySnapshot) {
    let mut best = f64::INFINITY;
    let mut lat = LatencySnapshot::default();
    for _ in 0..trials {
        let (t, l) = trial(lanes, policy, size, n_msgs);
        if t < best {
            best = t;
            lat = l;
        }
    }
    let msgs = (PAIRS * n_msgs) as f64;
    let bytes = msgs * size as f64;
    (msgs / best / 1e6, bytes / best / 1e6, lat)
}

fn main() {
    let max_msgs = env_usize("PIPMCOLL_FABRIC_MSGS", 20_000);
    let trials = env_usize("PIPMCOLL_FABRIC_TRIALS", 3);
    let lanes_grid: Vec<usize> = (1..=8).collect();
    // Small sizes probe message rate (Fig. 1a), large ones bandwidth
    // (Fig. 1b). Message counts shrink with size to bound the byte
    // volume per point.
    let sizes: [(usize, &str); 4] = [
        (64, "64B"),
        (1024, "1KiB"),
        (16 * 1024, "16KiB"),
        (128 * 1024, "128KiB"),
    ];
    let budget: usize = 32 << 20; // bytes per pair per trial, cap

    let mut series = Vec::new();
    let mut rates: Vec<SweepRow> = Vec::new();
    for &(size, label) in &sizes {
        let n_msgs = (budget / size).clamp(64, max_msgs);
        eprintln!("  sweeping {label} ({n_msgs} msgs/pair, best of {trials}) ...");
        let mut mbs = Vec::new();
        let mut mmsgs = Vec::new();
        let mut lats = Vec::new();
        for &k in &lanes_grid {
            // The headline series keeps the environment's lane policy
            // (modulo unless PIPMCOLL_LANE_POLICY overrides), so its
            // schema and meaning are unchanged from earlier revisions.
            let (mm, mb, lat) = measure(k, TcpConfig::default().lane_policy, size, n_msgs, trials);
            mbs.push(mb);
            mmsgs.push(mm);
            lats.push(lat);
        }
        series.push(Series {
            label: format!("{label}_MBs"),
            points: lanes_grid
                .iter()
                .zip(&mbs)
                .map(|(&k, &y)| (k as f64, y))
                .collect(),
        });
        rates.push(SweepRow {
            label: label.to_string(),
            mbs,
            mmsgs,
            lats,
            n_msgs,
        });
    }

    // Policy comparison at the two extremes of the size grid: 64 B
    // probes the message-rate floor striping must not sink (small
    // frames stay on the modulo fast path below stripe_min), 128 KiB
    // the bandwidth ceiling striping exists to raise (per-lane
    // segments that also duck under the eager threshold).
    let mut policy_rows: Vec<PolicyRow> = Vec::new();
    for &(size, label) in &[sizes[0], sizes[3]] {
        let n_msgs = (budget / size).clamp(64, max_msgs);
        for (policy, pname) in [
            (LanePolicy::Modulo, "modulo"),
            (LanePolicy::Stripe, "stripe"),
        ] {
            eprintln!("  policy sweep {label} / {pname} ...");
            let mut mbs = Vec::new();
            let mut mmsgs = Vec::new();
            for &k in &lanes_grid {
                let (mm, mb, _) = measure(k, policy, size, n_msgs, trials);
                mbs.push(mb);
                mmsgs.push(mm);
            }
            policy_rows.push(PolicyRow {
                label: format!("{label}-{pname}"),
                mbs,
                mmsgs,
                n_msgs,
            });
        }
    }

    let fig = Figure {
        id: "fabric_sweep".into(),
        title: "TCP fabric loopback sweep: throughput vs striped lanes (paper Fig. 1 analogue)"
            .into(),
        x_name: "lanes".into(),
        y_name: "MB/s".into(),
        series,
    };
    println!("{}", fig.table());
    let dir = results_dir();
    let json = sweep_json(&lanes_grid, &rates, &policy_rows, trials);
    std::fs::write(dir.join("fabric_sweep.csv"), fig.csv()).expect("write csv");
    std::fs::write(dir.join("fabric_sweep.json"), &json).expect("write json");
    write_bench_fabric_section("sweep", &json);
}

/// One (size, lane policy) line of the policy comparison.
struct PolicyRow {
    label: String,
    mbs: Vec<f64>,
    mmsgs: Vec<f64>,
    n_msgs: usize,
}

/// One message size's results across the lane grid.
struct SweepRow {
    label: String,
    mbs: Vec<f64>,
    mmsgs: Vec<f64>,
    lats: Vec<LatencySnapshot>,
    n_msgs: usize,
}

/// Hand-rolled JSON (the workspace carries no serialization dependency):
/// the full sweep, message rates and ack-RTT percentiles included, for
/// EXPERIMENTS.md tooling and the `BENCH_fabric.json` perf trajectory.
fn sweep_json(
    lanes: &[usize],
    rates: &[SweepRow],
    policy_rows: &[PolicyRow],
    trials: usize,
) -> String {
    let fmt = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    // "No samples" is `null`, observably different from a measured 0 —
    // rendezvous-dominated series used to emit placeholder 0 rows here.
    let fmt_opt = |v: &[Option<u64>]| {
        v.iter()
            .map(|x| x.map_or_else(|| "null".to_string(), |u| u.to_string()))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"id\": \"fabric_sweep\",");
    let _ = writeln!(out, "  \"backend\": \"tcp-loopback\",");
    let _ = writeln!(out, "  \"pairs\": {PAIRS},");
    let _ = writeln!(out, "  \"trials\": {trials},");
    let _ = writeln!(
        out,
        "  \"lanes\": [{}],",
        lanes
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  \"series\": [");
    for (i, row) in rates.iter().enumerate() {
        let p50: Vec<Option<u64>> = row.lats.iter().map(|l| l.p50_us).collect();
        let p99: Vec<Option<u64>> = row.lats.iter().map(|l| l.p99_us).collect();
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"label\": \"{}\",", row.label);
        let _ = writeln!(out, "      \"msgs_per_pair\": {},", row.n_msgs);
        let _ = writeln!(out, "      \"mb_per_s\": [{}],", fmt(&row.mbs));
        let _ = writeln!(out, "      \"mmsg_per_s\": [{}],", fmt(&row.mmsgs));
        let _ = writeln!(out, "      \"ack_rtt_p50_us\": [{}],", fmt_opt(&p50));
        let _ = writeln!(out, "      \"ack_rtt_p99_us\": [{}]", fmt_opt(&p99));
        let _ = writeln!(out, "    }}{}", if i + 1 < rates.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"policy_series\": [");
    for (i, row) in policy_rows.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"label\": \"{}\",", row.label);
        let _ = writeln!(out, "      \"msgs_per_pair\": {},", row.n_msgs);
        let _ = writeln!(out, "      \"mb_per_s\": [{}],", fmt(&row.mbs));
        let _ = writeln!(out, "      \"mmsg_per_s\": [{}]", fmt(&row.mmsgs));
        let _ = writeln!(
            out,
            "    }}{}",
            if i + 1 < policy_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    out.push('}');
    out
}
