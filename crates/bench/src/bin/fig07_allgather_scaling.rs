//! Figure 7: MPI_Allgather vs. node count at 16 B and 1 kB per rank,
//! PiP-MColl vs. the PiP-MPICH baseline.

use pipmcoll_bench::{grids, harness_nodes, node_sweep};
use pipmcoll_core::{AllgatherParams, CollectiveSpec, LibraryProfile};

fn main() {
    let libs = [LibraryProfile::PipMColl, LibraryProfile::PipMpich];
    let grid = grids::node_grid(harness_nodes());
    for (sub, cb) in [("a", 16usize), ("b", 1024)] {
        node_sweep(
            &format!("fig07{sub}_allgather_nodes_{cb}B"),
            &format!("MPI_Allgather node scaling, {cb} B per rank (paper Fig. 7{sub})"),
            &grid,
            &libs,
            CollectiveSpec::Allgather(AllgatherParams { cb }),
        )
        .emit();
    }
}
