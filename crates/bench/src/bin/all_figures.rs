//! Regenerate every figure in sequence (convenience wrapper). Equivalent to
//! running each fig* binary; honours PIPMCOLL_NODES / PIPMCOLL_PPN.

use std::process::Command;

fn main() {
    let bins = [
        "fig01_pt2pt",
        "fig06_scatter_scaling",
        "fig07_allgather_scaling",
        "fig08_allreduce_scaling",
        "fig09_scatter_small",
        "fig10_allgather_small",
        "fig11_allreduce_small",
        "fig12_scatter_large",
        "fig13_allgather_large",
        "fig14_allreduce_large",
        "analytic_check",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for b in bins {
        eprintln!("==> {b}");
        let status = Command::new(dir.join(b))
            .status()
            .unwrap_or_else(|e| panic!("spawn {b}: {e}"));
        assert!(status.success(), "{b} failed");
    }
}
