//! Where does the time go? Per-collective, per-library decomposition of
//! the bottleneck rank's virtual time into operation categories — the
//! analysis behind the paper's §IV explanations (e.g. the baseline's
//! small-message time is receive/handshake-dominated, PiP-MColl's
//! large-message time is copy/bandwidth-dominated).

use pipmcoll_bench::{harness_machine, harness_nodes};
use pipmcoll_core::{
    run_collective, AllgatherParams, AllreduceParams, CollectiveSpec, LibraryProfile, ScatterParams,
};
use pipmcoll_engine::report::OpCategory;

fn main() {
    let nodes = harness_nodes().min(32); // analysis doesn't need full scale
    let machine = harness_machine(nodes);
    let cases = [
        (
            "scatter 256B",
            CollectiveSpec::Scatter(ScatterParams { cb: 256, root: 0 }),
        ),
        (
            "allgather 64B",
            CollectiveSpec::Allgather(AllgatherParams { cb: 64 }),
        ),
        (
            "allgather 256kB",
            CollectiveSpec::Allgather(AllgatherParams { cb: 256 * 1024 }),
        ),
        (
            "allreduce 64d",
            CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(64)),
        ),
        (
            "allreduce 512kd",
            CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(512 * 1024)),
        ),
    ];
    println!(
        "# bottleneck-rank time breakdown, {nodes} nodes x {} ppn",
        machine.topo.ppn()
    );
    println!(
        "{:<18} {:<12} {:>10} {:>9} | {}",
        "collective",
        "library",
        "total_us",
        "share%",
        OpCategory::ALL
            .map(|c| format!("{:>9}", c.name()))
            .join(" ")
    );
    for (name, spec) in &cases {
        for lib in [LibraryProfile::PipMColl, LibraryProfile::PipMpich] {
            let r = run_collective(lib, machine, spec).expect("simulate");
            let b = r.bottleneck_breakdown();
            let total = r.makespan.as_us_f64();
            let attributed: f64 = b.iter().map(|t| t.as_us_f64()).sum();
            let cols = OpCategory::ALL
                .map(|c| {
                    format!(
                        "{:>8.1}%",
                        100.0 * b[c.idx()].as_us_f64() / total.max(1e-12)
                    )
                })
                .join(" ");
            println!(
                "{:<18} {:<12} {:>10.2} {:>8.1}% | {}",
                name,
                lib.name(),
                total,
                100.0 * attributed / total.max(1e-12),
                cols
            );
        }
    }
}
