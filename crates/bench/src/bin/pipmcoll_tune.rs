//! Self-tuning sweep: measure both PiP-MColl algorithm families for
//! allreduce and allgather on the real TCP loopback fabric across a
//! size × lane-count × lane-policy grid, and emit the measured
//! crossover points as `results/tune_table.json` — a
//! [`SelectionTable`] the runtime loads via `PIPMCOLL_TUNE_TABLE` to
//! override the paper's static switch constants.
//!
//! Methodology (MPI Advance-style measured selection): for every size
//! on the grid, run the *small* and the *large* algorithm explicitly —
//! the dispatch switch is bypassed, each family is forced — under each
//! configured `(lanes, lane policy)` combination, best-of-`TRIALS`
//! with `ITERS` collective iterations per timed run. A size's winner
//! is the family with the lower best time across combinations; the
//! table rows are exactly the measured grid, so the runtime's
//! nearest-size lookup never extrapolates beyond a measurement.
//!
//! Knobs: `PIPMCOLL_TUNE_ITERS` (default 5), `PIPMCOLL_TUNE_TRIALS`
//! (default 3), `PIPMCOLL_TUNE_LANES` (comma list, default `4`),
//! `PIPMCOLL_TUNE_POLICIES` (comma list of `modulo`/`stripe`, default
//! `modulo,stripe`). With `PIPMCOLL_TUNE_GATE=1` the bin additionally
//! asserts, on the measured data, that the tuned pick is never slower
//! than the static-constant pick at the allreduce gate counts
//! {2048, 4096, 8192, 16384} and exits non-zero on a violation.
//!
//! Also writes `results/pipmcoll_tune.json` (the full measurement
//! body) and merges it into `BENCH_fabric.json` as the `"tune"`
//! section.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use pipmcoll_bench::{atomic_write, results_dir, write_bench_fabric_section};
use pipmcoll_core::mcoll::{
    allgather_mcoll_large, allgather_mcoll_small, allreduce_mcoll_large, allreduce_mcoll_small,
};
use pipmcoll_core::tuning::{self, Algo, SelectionTable};
use pipmcoll_core::{AllgatherParams, AllreduceParams};
use pipmcoll_fabric::{Fabric, LanePolicy, TcpConfig, TcpFabric};
use pipmcoll_model::Topology;
use pipmcoll_rt::run_cluster_on;
use pipmcoll_sched::verify::pattern;
use pipmcoll_sched::BufSizes;

/// Tuning topology: 2 nodes so every collective crosses the fabric,
/// small enough for the 1-CPU CI container.
const NODES: usize = 2;
const PPN: usize = 2;

/// Allreduce sizes (element counts) bracketing the paper's 8 k switch.
const ALLREDUCE_COUNTS: [usize; 6] = [512, 2048, 4096, 8192, 16384, 32768];
/// Allgather sizes (bytes per rank) bracketing the 64 KiB switch.
const ALLGATHER_BYTES: [usize; 5] = [4096, 16384, 65536, 131072, 262144];
/// Gate counts: the tuned pick must not lose to the static pick here.
const GATE_COUNTS: [usize; 4] = [2048, 4096, 8192, 16384];

fn env_usize(name: &str, default: usize) -> usize {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be a positive integer, got {v:?}")),
    }
}

fn env_list(name: &str, default: &str) -> Vec<String> {
    std::env::var(name)
        .unwrap_or_else(|_| default.to_string())
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// One fabric configuration on the measurement grid.
#[derive(Clone)]
struct Combo {
    lanes: usize,
    policy: LanePolicy,
    label: String,
}

/// Which collective + forced family one measurement runs.
#[derive(Clone, Copy)]
enum Forced {
    AllreduceSmall(AllreduceParams),
    AllreduceLarge(AllreduceParams),
    AllgatherSmall(AllgatherParams),
    AllgatherLarge(AllgatherParams),
}

impl Forced {
    fn run(&self, c: &mut pipmcoll_rt::RtComm) {
        match self {
            Forced::AllreduceSmall(p) => allreduce_mcoll_small(c, p),
            Forced::AllreduceLarge(p) => allreduce_mcoll_large(c, p),
            Forced::AllgatherSmall(p) => allgather_mcoll_small(c, p),
            Forced::AllgatherLarge(p) => allgather_mcoll_large(c, p),
        }
    }

    fn sizes(&self, topo: Topology) -> Vec<BufSizes> {
        match self {
            Forced::AllreduceSmall(p) | Forced::AllreduceLarge(p) => {
                let f = p.buf_sizes();
                (0..topo.world_size()).map(f).collect()
            }
            Forced::AllgatherSmall(p) | Forced::AllgatherLarge(p) => {
                let f = p.buf_sizes(topo);
                (0..topo.world_size()).map(f).collect()
            }
        }
    }
}

/// Best-of-`trials` time for one (collective family, combo) point, in
/// microseconds per collective iteration. Fabric setup and rank-thread
/// spawn are identical across families, so they cancel in comparisons.
fn measure_us(forced: Forced, combo: &Combo, iters: usize, trials: usize) -> f64 {
    let topo = Topology::new(NODES, PPN);
    let sizes = forced.sizes(topo);
    let sizes = &sizes;
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let fabric = Arc::new(
            TcpFabric::connect(
                topo,
                TcpConfig {
                    lanes: combo.lanes,
                    lane_policy: combo.policy,
                    ..TcpConfig::default()
                },
            )
            .expect("loopback fabric"),
        );
        let t0 = Instant::now();
        let res = run_cluster_on(
            Arc::clone(&fabric) as Arc<dyn Fabric>,
            topo,
            |r| sizes[r],
            |r| pattern(r, sizes[r].send),
            iters,
            |c| forced.run(c),
        );
        let t = t0.elapsed().as_secs_f64();
        assert!(
            res.failures.is_empty(),
            "tune run failed ({}): {:?}",
            combo.label,
            res.failures
        );
        best = best.min(t);
    }
    best * 1e6 / iters as f64
}

/// All measurements for one collective: per size, per combo, both
/// families.
struct CollRows {
    /// `"allreduce"` / `"allgather"`.
    name: &'static str,
    /// `"count"` / `"bytes"`.
    unit: &'static str,
    rows: Vec<SizeRow>,
}

struct SizeRow {
    size: usize,
    /// Per-combo (small µs, large µs), combo order.
    times: Vec<(f64, f64)>,
}

impl SizeRow {
    /// Best time for each family across combos.
    fn best(&self) -> (f64, f64) {
        self.times
            .iter()
            .fold((f64::INFINITY, f64::INFINITY), |(s, l), &(cs, cl)| {
                (s.min(cs), l.min(cl))
            })
    }

    fn winner(&self) -> Algo {
        let (s, l) = self.best();
        if l < s {
            Algo::Large
        } else {
            Algo::Small
        }
    }
}

fn sweep_collective(
    name: &'static str,
    unit: &'static str,
    sizes: &[usize],
    combos: &[Combo],
    iters: usize,
    trials: usize,
    forced_of: impl Fn(usize, bool) -> Forced,
) -> CollRows {
    let mut rows = Vec::new();
    for &size in sizes {
        let mut times = Vec::new();
        for combo in combos {
            let small = measure_us(forced_of(size, false), combo, iters, trials);
            let large = measure_us(forced_of(size, true), combo, iters, trials);
            eprintln!(
                "  {name} {size} {unit} [{}]: small {small:.1}us large {large:.1}us",
                combo.label
            );
            times.push((small, large));
        }
        rows.push(SizeRow { size, times });
    }
    CollRows { name, unit, rows }
}

/// The static-constant pick for a size, mirroring the blocking
/// dispatch's fallback path.
fn static_pick(name: &str, size: usize) -> Algo {
    let large = match name {
        "allreduce" => tuning::mcoll_allreduce_uses_large(size),
        _ => tuning::mcoll_allgather_uses_large(size),
    };
    if large {
        Algo::Large
    } else {
        Algo::Small
    }
}

fn main() {
    let iters = env_usize("PIPMCOLL_TUNE_ITERS", 5);
    let trials = env_usize("PIPMCOLL_TUNE_TRIALS", 3);
    let lanes: Vec<usize> = env_list("PIPMCOLL_TUNE_LANES", "4")
        .iter()
        .map(|s| s.parse().unwrap_or_else(|_| panic!("bad lane count {s:?}")))
        .collect();
    let policies: Vec<LanePolicy> = env_list("PIPMCOLL_TUNE_POLICIES", "modulo,stripe")
        .iter()
        .map(|s| LanePolicy::parse(s).unwrap_or_else(|| panic!("bad lane policy {s:?}")))
        .collect();
    let combos: Vec<Combo> = policies
        .iter()
        .flat_map(|&policy| {
            lanes.iter().map(move |&k| Combo {
                lanes: k,
                policy,
                label: format!(
                    "{}-k{k}",
                    match policy {
                        LanePolicy::Modulo => "modulo",
                        LanePolicy::Stripe => "stripe",
                    }
                ),
            })
        })
        .collect();
    eprintln!(
        "tuning on {NODES}x{PPN} loopback TCP, {} combos, {iters} iters, best of {trials}",
        combos.len()
    );

    let allreduce = sweep_collective(
        "allreduce",
        "count",
        &ALLREDUCE_COUNTS,
        &combos,
        iters,
        trials,
        |count, large| {
            let p = AllreduceParams::sum_doubles(count);
            if large {
                Forced::AllreduceLarge(p)
            } else {
                Forced::AllreduceSmall(p)
            }
        },
    );
    let allgather = sweep_collective(
        "allgather",
        "bytes",
        &ALLGATHER_BYTES,
        &combos,
        iters,
        trials,
        |cb, large| {
            let p = AllgatherParams { cb };
            if large {
                Forced::AllgatherLarge(p)
            } else {
                Forced::AllgatherSmall(p)
            }
        },
    );

    // Assemble and persist the selection table.
    let table = SelectionTable::new(
        allreduce
            .rows
            .iter()
            .map(|r| (r.size as u64, r.winner()))
            .collect(),
        allgather
            .rows
            .iter()
            .map(|r| (r.size as u64, r.winner()))
            .collect(),
    );
    let dir = results_dir();
    let table_path = dir.join("tune_table.json");
    atomic_write(&table_path, &table.to_json());
    println!("selection table -> {}", table_path.display());

    for coll in [&allreduce, &allgather] {
        println!("\n{} ({}):", coll.name, coll.unit);
        for row in &coll.rows {
            let (s, l) = row.best();
            println!(
                "  {:>8} {:>6}  small {s:>10.1}us  large {l:>10.1}us  -> {}  (static: {})",
                row.size,
                coll.unit,
                row.winner().name(),
                static_pick(coll.name, row.size).name(),
            );
        }
    }

    let body = tune_json(&combos, iters, trials, &[&allreduce, &allgather]);
    atomic_write(&dir.join("pipmcoll_tune.json"), &body);
    write_bench_fabric_section("tune", &body);

    // Gate: on the measured grid the tuned pick (argmin of the two
    // measured families) can never be slower than the static pick —
    // verify it anyway, per size, so a table-assembly regression that
    // inverts a pick fails loudly in CI.
    if std::env::var("PIPMCOLL_TUNE_GATE").as_deref() == Ok("1") {
        let mut bad = 0;
        for &count in &GATE_COUNTS {
            let Some(row) = allreduce.rows.iter().find(|r| r.size == count) else {
                continue;
            };
            let (s, l) = row.best();
            let tuned = match table
                .allreduce_uses_large(count)
                .expect("gate count is on the measured grid")
            {
                true => l,
                false => s,
            };
            let fixed = match static_pick("allreduce", count) {
                Algo::Large => l,
                Algo::Small => s,
            };
            let ratio = fixed / tuned;
            println!(
                "gate allreduce {count}: tuned {tuned:.1}us static {fixed:.1}us ({ratio:.2}x)"
            );
            if tuned > fixed {
                eprintln!("GATE VIOLATION: tuned pick slower than static at count {count}");
                bad += 1;
            }
        }
        if bad > 0 {
            std::process::exit(1);
        }
        println!("tune gate passed: tuned >= 1.0x static at all gate counts");
    }
}

/// Hand-rolled JSON body for the `"tune"` BENCH_fabric section.
fn tune_json(combos: &[Combo], iters: usize, trials: usize, colls: &[&CollRows]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"id\": \"pipmcoll_tune\",");
    let _ = writeln!(out, "  \"backend\": \"tcp-loopback\",");
    let _ = writeln!(out, "  \"nodes\": {NODES},");
    let _ = writeln!(out, "  \"ppn\": {PPN},");
    let _ = writeln!(out, "  \"iters\": {iters},");
    let _ = writeln!(out, "  \"trials\": {trials},");
    let labels: Vec<String> = combos.iter().map(|c| format!("\"{}\"", c.label)).collect();
    let _ = writeln!(out, "  \"combos\": [{}],", labels.join(", "));
    let _ = writeln!(out, "  \"collectives\": [");
    for (i, coll) in colls.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", coll.name);
        let _ = writeln!(out, "      \"unit\": \"{}\",", coll.unit);
        let _ = writeln!(out, "      \"rows\": [");
        for (j, row) in coll.rows.iter().enumerate() {
            let small: Vec<String> = row.times.iter().map(|t| format!("{:.1}", t.0)).collect();
            let large: Vec<String> = row.times.iter().map(|t| format!("{:.1}", t.1)).collect();
            let _ = writeln!(
                out,
                "        {{\"size\": {}, \"small_us\": [{}], \"large_us\": [{}], \"algo\": \"{}\"}}{}",
                row.size,
                small.join(", "),
                large.join(", "),
                row.winner().name(),
                if j + 1 < coll.rows.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(out, "    }}{}", if i + 1 < colls.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push('}');
    out
}
