//! Extension benchmarks: the global multi-object MPI_Bcast / MPI_Gather /
//! MPI_Reduce (the paper's natural next collectives, built from the same
//! primitives) against the binomial-tree baselines every MPI library ships.

use pipmcoll_bench::{harness_machine, harness_nodes, harness_ppn, Figure, Series};
use pipmcoll_core::baseline::{
    barrier_dissemination, bcast_binomial, gather_binomial, reduce_binomial,
};
use pipmcoll_core::mcoll::{barrier_mcoll, bcast_mcoll, gather_mcoll, reduce_mcoll};
use pipmcoll_core::AllreduceParams;
use pipmcoll_engine::{simulate, EngineConfig};
use pipmcoll_sched::{record_with_sizes, BufSizes};

fn main() {
    let nodes = harness_nodes();
    let ppn = harness_ppn();
    let machine = harness_machine(nodes);
    let world = nodes * ppn;
    let cfg_mcoll = EngineConfig::pip_mcoll(machine);
    let cfg_base = EngineConfig::pip_mpich(machine);

    let run = |cfg: &EngineConfig,
               sizes: &dyn Fn(usize) -> BufSizes,
               algo: &mut dyn FnMut(&mut pipmcoll_sched::TraceComm)| {
        let sched = record_with_sizes(machine.topo, sizes, algo);
        sched.validate().expect("valid schedule");
        simulate(cfg, &sched)
            .expect("simulate")
            .makespan
            .as_us_f64()
    };

    let sizes_axis: Vec<usize> = (0..8).map(|i| 64usize << (2 * i)).collect(); // 64 B .. 1 MiB

    // --- Bcast. -----------------------------------------------------------
    let mut mcoll_pts = Vec::new();
    let mut base_pts = Vec::new();
    for &cb in &sizes_axis {
        let sizes = move |r: usize| BufSizes::new(if r == 0 { cb } else { 0 }, cb);
        mcoll_pts.push((
            cb as f64,
            run(&cfg_mcoll, &sizes, &mut |c| bcast_mcoll(c, cb, 0)),
        ));
        base_pts.push((
            cb as f64,
            run(&cfg_base, &sizes, &mut |c| bcast_binomial(c, cb, 0)),
        ));
    }
    Figure {
        id: "ext_bcast".into(),
        title: format!("extension: multi-object MPI_Bcast vs binomial ({nodes}x{ppn})"),
        x_name: "bytes".into(),
        y_name: "time (us)".into(),
        series: vec![
            Series {
                label: "mcoll".into(),
                points: mcoll_pts,
            },
            Series {
                label: "binomial".into(),
                points: base_pts,
            },
        ],
    }
    .emit();

    // --- Gather (per-rank contribution sweep). ----------------------------
    let gather_axis: Vec<usize> = (0..6).map(|i| 16usize << (2 * i)).collect();
    let mut mcoll_pts = Vec::new();
    let mut base_pts = Vec::new();
    for &cb in &gather_axis {
        let sizes = move |r: usize| BufSizes::new(cb, if r == 0 { world * cb } else { 0 });
        mcoll_pts.push((
            cb as f64,
            run(&cfg_mcoll, &sizes, &mut |c| gather_mcoll(c, cb, 0)),
        ));
        base_pts.push((
            cb as f64,
            run(&cfg_base, &sizes, &mut |c| gather_binomial(c, cb, 0)),
        ));
    }
    Figure {
        id: "ext_gather".into(),
        title: format!("extension: multi-object MPI_Gather vs binomial ({nodes}x{ppn})"),
        x_name: "bytes".into(),
        y_name: "time (us)".into(),
        series: vec![
            Series {
                label: "mcoll".into(),
                points: mcoll_pts,
            },
            Series {
                label: "binomial".into(),
                points: base_pts,
            },
        ],
    }
    .emit();

    // --- Barrier (node-count sweep). ---------------------------------------
    let mut mcoll_pts = Vec::new();
    let mut base_pts = Vec::new();
    let mut node_grid = vec![2usize, 8, 32, nodes.max(2)];
    node_grid.sort_unstable();
    node_grid.dedup();
    for nn in node_grid {
        let m = harness_machine(nn);
        let flat = {
            let sched = record_with_sizes(m.topo, &|_| BufSizes::new(0, 0), barrier_dissemination);
            sched.validate().expect("valid schedule");
            simulate(&EngineConfig::pip_mpich(m), &sched)
                .expect("simulate")
                .makespan
                .as_us_f64()
        };
        let hier = {
            let sched = record_with_sizes(m.topo, &|_| BufSizes::new(0, 0), barrier_mcoll);
            sched.validate().expect("valid schedule");
            simulate(&EngineConfig::pip_mcoll(m), &sched)
                .expect("simulate")
                .makespan
                .as_us_f64()
        };
        mcoll_pts.push((nn as f64, hier));
        base_pts.push((nn as f64, flat));
    }
    Figure {
        id: "ext_barrier".into(),
        title: format!("extension: hierarchical PiP barrier vs flat dissemination ({ppn} ppn)"),
        x_name: "nodes".into(),
        y_name: "time (us)".into(),
        series: vec![
            Series {
                label: "hierarchical".into(),
                points: mcoll_pts,
            },
            Series {
                label: "dissemination".into(),
                points: base_pts,
            },
        ],
    }
    .emit();

    // --- Reduce (double counts). ------------------------------------------
    let count_axis: Vec<usize> = (0..7).map(|i| 8usize << (2 * i)).collect();
    let mut mcoll_pts = Vec::new();
    let mut base_pts = Vec::new();
    for &count in &count_axis {
        let p = AllreduceParams::sum_doubles(count);
        let cb = p.cb();
        let sizes = move |r: usize| BufSizes::new(cb, if r == 0 { cb } else { 0 });
        mcoll_pts.push((
            count as f64,
            run(&cfg_mcoll, &sizes, &mut |c| reduce_mcoll(c, &p, 0)),
        ));
        base_pts.push((
            count as f64,
            run(&cfg_base, &sizes, &mut |c| reduce_binomial(c, &p, 0)),
        ));
    }
    Figure {
        id: "ext_reduce".into(),
        title: format!("extension: multi-object MPI_Reduce vs binomial ({nodes}x{ppn})"),
        x_name: "doubles".into(),
        y_name: "time (us)".into(),
        series: vec![
            Series {
                label: "mcoll".into(),
                points: mcoll_pts,
            },
            Series {
                label: "binomial".into(),
                points: base_pts,
            },
        ],
    }
    .emit();
}
