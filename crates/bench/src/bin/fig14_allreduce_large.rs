//! Figure 14: MPI_Allreduce with medium/large double counts (1 k – 512 k)
//! at full scale, including the PiP-MColl-small ablation. PiP-MColl
//! switches to reduce-scatter + allgather at 8 k counts.

use pipmcoll_bench::{grids, library_sweep};
use pipmcoll_core::{AllreduceParams, CollectiveSpec, LibraryProfile};

fn main() {
    let libs = [
        LibraryProfile::PipMColl,
        LibraryProfile::PipMCollSmall,
        LibraryProfile::PipMpich,
        LibraryProfile::IntelMpi,
        LibraryProfile::OpenMpi,
        LibraryProfile::Mvapich2,
    ];
    library_sweep(
        "fig14_allreduce_large",
        "MPI_Allreduce, medium/large double counts, 128 nodes (paper Fig. 14)",
        "doubles",
        &grids::large_counts(),
        &libs,
        |count| CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(count)),
    )
    .normalised_to_first()
    .emit();
}
