//! Shared helpers for the cross-crate integration tests.

use pipmcoll_core::{build_schedule, CollectiveSpec, LibraryProfile};
use pipmcoll_model::Topology;
use pipmcoll_sched::dataflow::execute_race_checked;
use pipmcoll_sched::Schedule;

/// Record `lib`'s schedule for `spec` and verify it against MPI semantics
/// through the race-checked dataflow interpreter.
pub fn verify_collective(
    lib: LibraryProfile,
    nodes: usize,
    ppn: usize,
    spec: &CollectiveSpec,
) -> Result<(), String> {
    let topo = Topology::new(nodes, ppn);
    let sched = build_schedule(lib, topo, spec);
    verify_schedule(&sched, spec)
}

/// Verify an already-recorded schedule against `spec`'s semantics.
pub fn verify_schedule(sched: &Schedule, spec: &CollectiveSpec) -> Result<(), String> {
    match spec {
        CollectiveSpec::Scatter(p) => pipmcoll_sched::verify::check_scatter(sched, p.root, p.cb),
        CollectiveSpec::Allgather(p) => pipmcoll_sched::verify::check_allgather(sched, p.cb),
        CollectiveSpec::Allreduce(p) => {
            assert_eq!(
                (p.dt, p.op),
                (
                    pipmcoll_model::Datatype::Double,
                    pipmcoll_model::ReduceOp::Sum
                ),
                "the generic checker covers SUM over doubles"
            );
            pipmcoll_sched::verify::check_allreduce_sum(sched, p.count)
        }
    }
}

/// Run a schedule through the dataflow interpreter with the standard
/// pattern inputs, returning final recv buffers (for rt cross-validation).
pub fn dataflow_recv(sched: &Schedule) -> Vec<Vec<u8>> {
    execute_race_checked(sched, |r| {
        pipmcoll_sched::verify::pattern(r, sched.programs()[r].sizes.send)
    })
    .expect("dataflow execution")
    .recv
}

/// Minimal xorshift64* generator so randomized tests need no external
/// crates; deterministic for a given seed, so failures reproduce exactly.
pub struct TestRng(u64);

impl TestRng {
    /// Seeded generator (seed 0 is mapped to a fixed odd constant).
    pub fn new(seed: u64) -> Self {
        TestRng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform boolean.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
