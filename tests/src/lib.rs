//! Shared helpers for the cross-crate integration tests.

use pipmcoll_core::{build_schedule, CollectiveSpec, LibraryProfile};
use pipmcoll_model::Topology;
use pipmcoll_sched::dataflow::execute_race_checked;
use pipmcoll_sched::Schedule;

/// Record `lib`'s schedule for `spec` and verify it against MPI semantics
/// through the race-checked dataflow interpreter.
pub fn verify_collective(
    lib: LibraryProfile,
    nodes: usize,
    ppn: usize,
    spec: &CollectiveSpec,
) -> Result<(), String> {
    let topo = Topology::new(nodes, ppn);
    let sched = build_schedule(lib, topo, spec);
    verify_schedule(&sched, spec)
}

/// Verify an already-recorded schedule against `spec`'s semantics.
pub fn verify_schedule(sched: &Schedule, spec: &CollectiveSpec) -> Result<(), String> {
    match spec {
        CollectiveSpec::Scatter(p) => pipmcoll_sched::verify::check_scatter(sched, p.root, p.cb),
        CollectiveSpec::Allgather(p) => pipmcoll_sched::verify::check_allgather(sched, p.cb),
        CollectiveSpec::Allreduce(p) => {
            assert_eq!(
                (p.dt, p.op),
                (
                    pipmcoll_model::Datatype::Double,
                    pipmcoll_model::ReduceOp::Sum
                ),
                "the generic checker covers SUM over doubles"
            );
            pipmcoll_sched::verify::check_allreduce_sum(sched, p.count)
        }
    }
}

/// Run a schedule through the dataflow interpreter with the standard
/// pattern inputs, returning final recv buffers (for rt cross-validation).
pub fn dataflow_recv(sched: &Schedule) -> Vec<Vec<u8>> {
    execute_race_checked(sched, |r| {
        pipmcoll_sched::verify::pattern(r, sched.programs()[r].sizes.send)
    })
    .expect("dataflow execution")
    .recv
}

/// Deterministic xorshift64* generator for randomized tests. The
/// implementation moved to `pipmcoll_fabric::ChaosRng` so the chaos
/// fabric and the test suite draw from one seeded source; the old name
/// stays for the property tests (same algorithm, same sequences).
pub use pipmcoll_fabric::ChaosRng as TestRng;
