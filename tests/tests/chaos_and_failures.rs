//! Failure-path integration tests: a hung peer, a stalled run and a
//! killed lane must each degrade into structured diagnostics — never a
//! wedged suite, never silent corruption.
//!
//! The whole binary runs with `PIPMCOLL_SYNC_TIMEOUT_MS=400` (set before
//! the first `sync_timeout()` call caches the value), so the failure
//! paths resolve in fractions of a second instead of the 10 s default.

use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

use pipmcoll_fabric::{
    ChanKey, ChaosConfig, ChaosFabric, Fabric, InProcFabric, TcpConfig, TcpFabric,
};
use pipmcoll_model::Topology;
use pipmcoll_rt::run_cluster_on;
use pipmcoll_sched::verify::pattern;
use pipmcoll_sched::{BufId, BufSizes, Comm, Region};

fn init() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        std::env::set_var("PIPMCOLL_SYNC_TIMEOUT_MS", "400");
    });
}

fn sync_timeout_ms() -> u64 {
    pipmcoll_fabric::sync_timeout().as_millis() as u64
}

/// A receive whose sender never shows up must fail the rank with a
/// diagnostic naming the stuck channel — within 2× sync_timeout, per the
/// failure-model contract — while the run itself returns normally.
#[test]
fn hung_peer_becomes_a_structured_failure_naming_the_channel() {
    init();
    let topo = Topology::new(2, 1);
    let fabric = Arc::new(
        TcpFabric::connect(
            topo,
            TcpConfig {
                lanes: 1,
                ..TcpConfig::default()
            },
        )
        .expect("loopback fabric"),
    );
    let t0 = Instant::now();
    let res = run_cluster_on(
        fabric,
        topo,
        |_| BufSizes::new(8, 8),
        |r| pattern(r, 8),
        1,
        |c| {
            if c.rank() == 0 {
                // Deliberately silent: never sends on (0, 1, 9).
            } else {
                c.recv(0, 9, Region::new(BufId::Recv, 0, 8));
            }
        },
    );
    let waited = t0.elapsed();
    assert!(!res.ok(), "a hung receive must be reported");
    let hung = res
        .failures
        .iter()
        .find(|f| f.rank == Some(1))
        .unwrap_or_else(|| panic!("no failure attributed to rank 1: {:?}", res.failures));
    assert!(
        hung.detail.contains("0 -> 1 tag 9"),
        "diagnostic must name the stuck channel: {}",
        hung.detail
    );
    assert!(
        hung.detail.contains("tcp"),
        "diagnostic must name the backend: {}",
        hung.detail
    );
    // The receive gives up after one sync_timeout; generous slack for
    // framing barriers and a loaded CI box, but well inside the
    // "structured failure within 2x sync_timeout" contract.
    assert!(
        waited < Duration::from_millis(2 * sync_timeout_ms() + 400),
        "hung peer took {waited:?} to resolve"
    );
}

/// A run making no communication progress at all (a rank stuck in
/// compute, a scheduler bug) is caught by the watchdog thread, which
/// records the fabric diagnostic instead of letting the run idle.
#[test]
fn watchdog_reports_a_stalled_run() {
    init();
    let topo = Topology::new(1, 2);
    let res = run_cluster_on(
        Arc::new(InProcFabric::new()),
        topo,
        |_| BufSizes::new(4, 4),
        |r| pattern(r, 4),
        1,
        |c| {
            if c.rank() == 0 {
                // Stall with no communication: only the watchdog can see
                // this (nothing is blocked on a timeout-bounded wait).
                // 2.5x sync_timeout exceeds the watchdog threshold of 2x.
                std::thread::sleep(Duration::from_millis(sync_timeout_ms() * 5 / 2));
            }
        },
    );
    let report = res
        .failures
        .iter()
        .find(|f| f.rank.is_none() && f.detail.contains("watchdog"))
        .unwrap_or_else(|| panic!("no watchdog report in {:?}", res.failures));
    assert!(
        report.detail.contains("no progress"),
        "watchdog report should describe the stall: {}",
        report.detail
    );
}

/// A stall that persists across several watchdog sweeps is one incident,
/// not one report per sweep: identical consecutive diagnostics are
/// deduplicated, so a long sleep crossing the threshold multiple times
/// yields exactly one watchdog failure.
#[test]
fn watchdog_deduplicates_repeated_stall_reports() {
    init();
    let topo = Topology::new(1, 1);
    // Sleep long enough for the 2x-sync_timeout threshold to be crossed
    // at least twice (0.8 s and 1.6 s at the 400 ms test timeout); the
    // stall signature never changes, so only the first crossing reports.
    let res = run_cluster_on(
        Arc::new(InProcFabric::new()),
        topo,
        |_| BufSizes::new(4, 4),
        |r| pattern(r, 4),
        1,
        |_| {
            std::thread::sleep(Duration::from_millis(sync_timeout_ms() * 11 / 2));
        },
    );
    let watchdog_reports = res
        .failures
        .iter()
        .filter(|f| f.rank.is_none() && f.detail.contains("watchdog"))
        .count();
    assert_eq!(
        watchdog_reports, 1,
        "an unchanged stall must be reported exactly once: {:?}",
        res.failures
    );
}

/// Killing a lane mid-stream must degrade gracefully: traffic remaps to
/// the survivors, per-channel FIFO order holds, and nothing is lost.
#[test]
fn killed_lane_degrades_preserving_fifo() {
    init();
    let topo = Topology::new(2, 4);
    let tcp = TcpFabric::connect(
        topo,
        TcpConfig {
            lanes: 4,
            rto: Duration::from_millis(5),
            ..TcpConfig::default()
        },
    )
    .expect("loopback fabric");
    let chaos = ChaosFabric::new(
        tcp,
        ChaosConfig {
            lane_kill: 1,
            kill_after: Some(25),
            seed: 9,
            ..ChaosConfig::default()
        },
    );
    let key: ChanKey = (0, 4, 1);
    for i in 0..150u32 {
        chaos.send(key, i.to_le_bytes().to_vec()).unwrap();
    }
    for i in 0..150u32 {
        assert_eq!(
            chaos.recv(key).unwrap(),
            i.to_le_bytes().to_vec(),
            "FIFO order must survive the lane kill"
        );
    }
    let diag = chaos.diag();
    assert_eq!(diag.dead_lanes.len(), 1, "exactly one lane was killed");
    assert!(
        chaos.drain_errors().is_empty(),
        "a gracefully degraded kill is not an error"
    );
}

/// `PIPMCOLL_CHAOS` wraps whatever backend `from_env` selects, so the
/// whole suite can run under fault injection with no code changes.
#[test]
fn chaos_env_wraps_the_default_fabric() {
    init();
    std::env::set_var("PIPMCOLL_CHAOS", "drop:0.05,dup:0.02");
    std::env::set_var("PIPMCOLL_CHAOS_SEED", "7");
    let fabric = pipmcoll_fabric::from_env(Topology::new(2, 1));
    std::env::remove_var("PIPMCOLL_CHAOS");
    std::env::remove_var("PIPMCOLL_CHAOS_SEED");
    assert_eq!(fabric.name(), "chaos");
    // Semantics are unchanged under injection.
    fabric.send((0, 1, 0), vec![1, 2, 3]).unwrap();
    assert_eq!(fabric.recv((0, 1, 0)).unwrap(), vec![1, 2, 3]);
}
