//! Property-based tests: random cluster shapes, sizes, roots and operators
//! — every recorded schedule must validate, be deadlock-free, race-free
//! under four interleavings, and produce MPI-correct results.

use pipmcoll_core::baseline::{
    allgather_bruck, allgather_recursive_doubling, allgather_ring, allreduce_rabenseifner,
    allreduce_recursive_doubling, bcast_binomial, gather_binomial,
};
use pipmcoll_core::mcoll::intranode::{
    intra_bcast_large, intra_bcast_small, intra_gather, intra_reduce_binomial,
    intra_reduce_chunked,
};
use pipmcoll_core::{
    AllgatherParams, AllreduceParams, CollectiveSpec, LibraryProfile, ScatterParams,
};
use pipmcoll_integration::verify_collective;
use pipmcoll_model::{Datatype, ReduceOp, Topology};
use pipmcoll_sched::dataflow::execute_race_checked;
use pipmcoll_sched::verify::{double_pattern, pattern, reference_reduce};
use pipmcoll_sched::{record, record_with_sizes, BufSizes};
use proptest::prelude::*;

fn shapes() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=7, 1usize..=5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scatter_correct_for_all_libraries(
        (nodes, ppn) in shapes(),
        cb in 1usize..200,
        root_node in 0usize..7,
        lib_idx in 0usize..LibraryProfile::ALL.len(),
    ) {
        let root = (root_node % nodes) * ppn; // always a local root
        let lib = LibraryProfile::ALL[lib_idx];
        let spec = CollectiveSpec::Scatter(ScatterParams { cb, root });
        verify_collective(lib, nodes, ppn, &spec).map_err(|e| {
            TestCaseError::fail(format!("{} {nodes}x{ppn} cb={cb} root={root}: {e}", lib.name()))
        })?;
    }

    #[test]
    fn allgather_correct_for_all_libraries(
        (nodes, ppn) in shapes(),
        cb in 1usize..200,
        lib_idx in 0usize..LibraryProfile::ALL.len(),
    ) {
        let lib = LibraryProfile::ALL[lib_idx];
        let spec = CollectiveSpec::Allgather(AllgatherParams { cb });
        verify_collective(lib, nodes, ppn, &spec).map_err(|e| {
            TestCaseError::fail(format!("{} {nodes}x{ppn} cb={cb}: {e}", lib.name()))
        })?;
    }

    #[test]
    fn allreduce_correct_for_all_libraries(
        (nodes, ppn) in shapes(),
        count in 1usize..150,
        lib_idx in 0usize..LibraryProfile::ALL.len(),
    ) {
        let lib = LibraryProfile::ALL[lib_idx];
        let spec = CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(count));
        verify_collective(lib, nodes, ppn, &spec).map_err(|e| {
            TestCaseError::fail(format!("{} {nodes}x{ppn} count={count}: {e}", lib.name()))
        })?;
    }

    #[test]
    fn baseline_bcast_gather_correct(
        (nodes, ppn) in shapes(),
        cb in 1usize..100,
        root_raw in 0usize..35,
    ) {
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let root = root_raw % world;
        // Broadcast.
        let sched = record_with_sizes(
            topo,
            |r| BufSizes::new(if r == root { cb } else { 0 }, cb),
            |c| bcast_binomial(c, cb, root),
        );
        sched.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let res = execute_race_checked(&sched, |r| if r == root { pattern(root, cb) } else { Vec::new() })
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        for rank in 0..world {
            prop_assert_eq!(&res.recv[rank], &pattern(root, cb));
        }
        // Gather.
        let sched = record_with_sizes(
            topo,
            |r| BufSizes::new(cb, if r == root { world * cb } else { 0 }),
            |c| gather_binomial(c, cb, root),
        );
        sched.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let res = execute_race_checked(&sched, |r| pattern(r, cb))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut expect = Vec::new();
        for r in 0..world {
            expect.extend_from_slice(&pattern(r, cb));
        }
        prop_assert_eq!(&res.recv[root], &expect);
    }

    #[test]
    fn intranode_reduce_any_operator(
        ppn in 1usize..8,
        count in 1usize..64,
        op_idx in 0usize..3,
        chunked in any::<bool>(),
    ) {
        // Prod over patterned doubles explodes; test Sum/Max/Min.
        let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min][op_idx];
        let topo = Topology::new(1, ppn);
        let cb = count * 8;
        let sched = record(topo, BufSizes::new(cb, cb), |c| {
            if chunked {
                intra_reduce_chunked(c, count, op, Datatype::Double);
            } else {
                intra_reduce_binomial(c, cb, op, Datatype::Double);
            }
        });
        sched.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let res = execute_race_checked(&sched, |r| {
            pipmcoll_model::dtype::doubles_to_bytes(&double_pattern(r, count))
        })
        .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(
            pipmcoll_model::dtype::bytes_to_doubles(&res.recv[0]),
            reference_reduce(op, ppn, count)
        );
    }

    #[test]
    fn intranode_bcast_gather_correct(ppn in 1usize..9, cb in 1usize..128, large in any::<bool>()) {
        let topo = Topology::new(1, ppn);
        let sched = record(topo, BufSizes::new(cb, cb), |c| {
            if large {
                intra_bcast_large(c, cb);
            } else {
                intra_bcast_small(c, cb);
            }
        });
        sched.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let res = execute_race_checked(&sched, |r| pattern(r, cb))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        for rank in 0..ppn {
            prop_assert_eq!(&res.recv[rank], &pattern(0, cb));
        }
        let sched = record_with_sizes(
            topo,
            |r| BufSizes::new(cb, if r == 0 { ppn * cb } else { 0 }),
            |c| intra_gather(c, cb),
        );
        sched.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
        let res = execute_race_checked(&sched, |r| pattern(r, cb))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        let mut expect = Vec::new();
        for r in 0..ppn {
            expect.extend_from_slice(&pattern(r, cb));
        }
        prop_assert_eq!(&res.recv[0], &expect);
    }

    #[test]
    fn baseline_allgathers_agree(
        (nodes, ppn) in shapes(),
        cb in 1usize..100,
    ) {
        // All three baseline allgathers must produce identical results.
        let topo = Topology::new(nodes, ppn);
        let p = AllgatherParams { cb };
        let mut outs = Vec::new();
        for algo in [
            allgather_bruck as fn(&mut pipmcoll_sched::TraceComm, &AllgatherParams),
            allgather_recursive_doubling,
            allgather_ring,
        ] {
            let sched = record_with_sizes(topo, p.buf_sizes(topo), |c| algo(c, &p));
            sched.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
            let res = execute_race_checked(&sched, |r| pattern(r, cb))
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            outs.push(res.recv);
        }
        prop_assert_eq!(&outs[0], &outs[1]);
        prop_assert_eq!(&outs[0], &outs[2]);
    }

    #[test]
    fn baseline_allreduces_agree(
        (nodes, ppn) in shapes(),
        count in 1usize..100,
    ) {
        let topo = Topology::new(nodes, ppn);
        let p = AllreduceParams::sum_doubles(count);
        let mut outs = Vec::new();
        for algo in [
            allreduce_recursive_doubling as fn(&mut pipmcoll_sched::TraceComm, &AllreduceParams),
            allreduce_rabenseifner,
        ] {
            let sched = record_with_sizes(topo, p.buf_sizes(), |c| algo(c, &p));
            sched.validate().map_err(|e| TestCaseError::fail(e.to_string()))?;
            let res = execute_race_checked(&sched, |r| {
                pipmcoll_model::dtype::doubles_to_bytes(&double_pattern(r, count))
            })
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
            outs.push(res.recv);
        }
        prop_assert_eq!(&outs[0], &outs[1]);
    }
}
