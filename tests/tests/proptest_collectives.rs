//! Randomized-property tests: random cluster shapes, sizes, roots and
//! operators — every recorded schedule must validate, pass the
//! happens-before race/deadlock analysis, and produce MPI-correct results.
//! Driven by a seeded in-tree PRNG (deterministic, dependency-free).

use pipmcoll_core::baseline::{
    allgather_bruck, allgather_recursive_doubling, allgather_ring, allreduce_rabenseifner,
    allreduce_recursive_doubling, bcast_binomial, gather_binomial,
};
use pipmcoll_core::mcoll::intranode::{
    intra_bcast_large, intra_bcast_small, intra_gather, intra_reduce_binomial, intra_reduce_chunked,
};
use pipmcoll_core::{
    AllgatherParams, AllreduceParams, CollectiveSpec, LibraryProfile, ScatterParams,
};
use pipmcoll_integration::{verify_collective, TestRng};
use pipmcoll_model::{Datatype, ReduceOp, Topology};
use pipmcoll_sched::dataflow::execute_race_checked;
use pipmcoll_sched::verify::{double_pattern, pattern, reference_reduce};
use pipmcoll_sched::{record, record_with_sizes, BufSizes};

const CASES: usize = 48;

/// Structural validation plus the sound happens-before race/deadlock
/// analysis — every recorded schedule must pass both before execution.
fn check_sound(sched: &pipmcoll_sched::Schedule) {
    sched.validate().unwrap_or_else(|e| panic!("{e}"));
    pipmcoll_sched::hb::check(sched).unwrap_or_else(|e| panic!("{e}"));
}

fn shape(rng: &mut TestRng) -> (usize, usize) {
    (rng.range(1, 8), rng.range(1, 6))
}

#[test]
fn scatter_correct_for_all_libraries() {
    let mut rng = TestRng::new(0xA11CE);
    for _ in 0..CASES {
        let (nodes, ppn) = shape(&mut rng);
        let cb = rng.range(1, 200);
        let root = (rng.range(0, 7) % nodes) * ppn; // always a local root
        let lib = LibraryProfile::ALL[rng.range(0, LibraryProfile::ALL.len())];
        let spec = CollectiveSpec::Scatter(ScatterParams { cb, root });
        verify_collective(lib, nodes, ppn, &spec)
            .unwrap_or_else(|e| panic!("{} {nodes}x{ppn} cb={cb} root={root}: {e}", lib.name()));
    }
}

#[test]
fn allgather_correct_for_all_libraries() {
    let mut rng = TestRng::new(0xB0B);
    for _ in 0..CASES {
        let (nodes, ppn) = shape(&mut rng);
        let cb = rng.range(1, 200);
        let lib = LibraryProfile::ALL[rng.range(0, LibraryProfile::ALL.len())];
        let spec = CollectiveSpec::Allgather(AllgatherParams { cb });
        verify_collective(lib, nodes, ppn, &spec)
            .unwrap_or_else(|e| panic!("{} {nodes}x{ppn} cb={cb}: {e}", lib.name()));
    }
}

#[test]
fn allreduce_correct_for_all_libraries() {
    let mut rng = TestRng::new(0xCAFE);
    for _ in 0..CASES {
        let (nodes, ppn) = shape(&mut rng);
        let count = rng.range(1, 150);
        let lib = LibraryProfile::ALL[rng.range(0, LibraryProfile::ALL.len())];
        let spec = CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(count));
        verify_collective(lib, nodes, ppn, &spec)
            .unwrap_or_else(|e| panic!("{} {nodes}x{ppn} count={count}: {e}", lib.name()));
    }
}

#[test]
fn baseline_bcast_gather_correct() {
    let mut rng = TestRng::new(0xD00D);
    for _ in 0..CASES {
        let (nodes, ppn) = shape(&mut rng);
        let cb = rng.range(1, 100);
        let topo = Topology::new(nodes, ppn);
        let world = topo.world_size();
        let root = rng.range(0, 35) % world;
        // Broadcast.
        let sched = record_with_sizes(
            topo,
            |r| BufSizes::new(if r == root { cb } else { 0 }, cb),
            |c| bcast_binomial(c, cb, root),
        );
        check_sound(&sched);
        let res = execute_race_checked(&sched, |r| {
            if r == root {
                pattern(root, cb)
            } else {
                Vec::new()
            }
        })
        .unwrap_or_else(|e| panic!("{e}"));
        for rank in 0..world {
            assert_eq!(&res.recv[rank], &pattern(root, cb), "bcast rank {rank}");
        }
        // Gather.
        let sched = record_with_sizes(
            topo,
            |r| BufSizes::new(cb, if r == root { world * cb } else { 0 }),
            |c| gather_binomial(c, cb, root),
        );
        check_sound(&sched);
        let res =
            execute_race_checked(&sched, |r| pattern(r, cb)).unwrap_or_else(|e| panic!("{e}"));
        let mut expect = Vec::new();
        for r in 0..world {
            expect.extend_from_slice(&pattern(r, cb));
        }
        assert_eq!(&res.recv[root], &expect, "gather root {root}");
    }
}

#[test]
fn intranode_reduce_any_operator() {
    let mut rng = TestRng::new(0xE220);
    for _ in 0..CASES {
        let ppn = rng.range(1, 8);
        let count = rng.range(1, 64);
        // Prod over patterned doubles explodes; test Sum/Max/Min.
        let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min][rng.range(0, 3)];
        let chunked = rng.flip();
        let topo = Topology::new(1, ppn);
        let cb = count * 8;
        let sched = record(topo, BufSizes::new(cb, cb), |c| {
            if chunked {
                intra_reduce_chunked(c, count, op, Datatype::Double);
            } else {
                intra_reduce_binomial(c, cb, op, Datatype::Double);
            }
        });
        check_sound(&sched);
        let res = execute_race_checked(&sched, |r| {
            pipmcoll_model::dtype::doubles_to_bytes(&double_pattern(r, count))
        })
        .unwrap_or_else(|e| panic!("ppn={ppn} count={count} {op:?} chunked={chunked}: {e}"));
        assert_eq!(
            pipmcoll_model::dtype::bytes_to_doubles(&res.recv[0]),
            reference_reduce(op, ppn, count),
            "ppn={ppn} count={count} {op:?} chunked={chunked}"
        );
    }
}

#[test]
fn intranode_bcast_gather_correct() {
    let mut rng = TestRng::new(0xF00);
    for _ in 0..CASES {
        let ppn = rng.range(1, 9);
        let cb = rng.range(1, 128);
        let large = rng.flip();
        let topo = Topology::new(1, ppn);
        let sched = record(topo, BufSizes::new(cb, cb), |c| {
            if large {
                intra_bcast_large(c, cb);
            } else {
                intra_bcast_small(c, cb);
            }
        });
        check_sound(&sched);
        let res =
            execute_race_checked(&sched, |r| pattern(r, cb)).unwrap_or_else(|e| panic!("{e}"));
        for rank in 0..ppn {
            assert_eq!(&res.recv[rank], &pattern(0, cb), "bcast large={large}");
        }
        let sched = record_with_sizes(
            topo,
            |r| BufSizes::new(cb, if r == 0 { ppn * cb } else { 0 }),
            |c| intra_gather(c, cb),
        );
        check_sound(&sched);
        let res =
            execute_race_checked(&sched, |r| pattern(r, cb)).unwrap_or_else(|e| panic!("{e}"));
        let mut expect = Vec::new();
        for r in 0..ppn {
            expect.extend_from_slice(&pattern(r, cb));
        }
        assert_eq!(&res.recv[0], &expect, "gather ppn={ppn} cb={cb}");
    }
}

#[test]
fn baseline_allgathers_agree() {
    let mut rng = TestRng::new(0xAB5EED);
    for _ in 0..CASES {
        let (nodes, ppn) = shape(&mut rng);
        let cb = rng.range(1, 100);
        // All three baseline allgathers must produce identical results.
        let topo = Topology::new(nodes, ppn);
        let p = AllgatherParams { cb };
        let mut outs = Vec::new();
        for algo in [
            allgather_bruck as fn(&mut pipmcoll_sched::TraceComm, &AllgatherParams),
            allgather_recursive_doubling,
            allgather_ring,
        ] {
            let sched = record_with_sizes(topo, p.buf_sizes(topo), |c| algo(c, &p));
            check_sound(&sched);
            let res =
                execute_race_checked(&sched, |r| pattern(r, cb)).unwrap_or_else(|e| panic!("{e}"));
            outs.push(res.recv);
        }
        assert_eq!(&outs[0], &outs[1], "{nodes}x{ppn} cb={cb}");
        assert_eq!(&outs[0], &outs[2], "{nodes}x{ppn} cb={cb}");
    }
}

#[test]
fn baseline_allreduces_agree() {
    let mut rng = TestRng::new(0x5EED5);
    for _ in 0..CASES {
        let (nodes, ppn) = shape(&mut rng);
        let count = rng.range(1, 100);
        let topo = Topology::new(nodes, ppn);
        let p = AllreduceParams::sum_doubles(count);
        let mut outs = Vec::new();
        for algo in [
            allreduce_recursive_doubling as fn(&mut pipmcoll_sched::TraceComm, &AllreduceParams),
            allreduce_rabenseifner,
        ] {
            let sched = record_with_sizes(topo, p.buf_sizes(), |c| algo(c, &p));
            check_sound(&sched);
            let res = execute_race_checked(&sched, |r| {
                pipmcoll_model::dtype::doubles_to_bytes(&double_pattern(r, count))
            })
            .unwrap_or_else(|e| panic!("{e}"));
            outs.push(res.recv);
        }
        assert_eq!(&outs[0], &outs[1], "{nodes}x{ppn} count={count}");
    }
}
