//! Mutation tests for the happens-before analyzer, plus a
//! zero-false-positive sweep.
//!
//! Soundness is only half the contract: the analyzer must *catch* real
//! synchronisation bugs and must *not* reject correct schedules. Each
//! mutant takes a proven-correct schedule and removes or corrupts exactly
//! one synchronisation op — always by in-place replacement, never removal,
//! because `Req` values index into the issuing rank's op list.

use pipmcoll_core::baseline::allgather_ring;
use pipmcoll_core::mcoll::intranode::intra_reduce_chunked;
use pipmcoll_core::{
    build_schedule, AllgatherParams, AllreduceParams, CollectiveSpec, LibraryProfile, ScatterParams,
};
use pipmcoll_model::{Datatype, ReduceOp, Topology};
use pipmcoll_sched::{hb, record, record_with_sizes, BufSizes, Op, Schedule, Violation};

/// The no-op every mutant substitutes for the op it kills.
const TOMBSTONE: Op = Op::Compute { bytes: 0 };

fn assert_flagged(sched: &Schedule, pred: impl Fn(&Violation) -> bool, what: &str) {
    match hb::check(sched) {
        Ok(_) => panic!("mutant not flagged: {what}"),
        Err(e) => assert!(
            e.violations.iter().any(pred),
            "expected {what}, analyzer said:\n{e}"
        ),
    }
}

/// Replace the first op on `rank` matching `sel` with [`TOMBSTONE`];
/// panics if the rank has no such op (the mutant would be vacuous).
fn kill_first(sched: &mut Schedule, rank: usize, sel: impl Fn(&Op) -> bool, what: &str) -> usize {
    let ops = &mut sched.programs_mut()[rank].ops;
    let i = ops
        .iter()
        .position(sel)
        .unwrap_or_else(|| panic!("rank {rank} has no {what} op to mutate"));
    ops[i] = TOMBSTONE;
    i
}

#[test]
fn dropped_node_barrier_is_flagged() {
    // Chunked intranode reduce synchronises exclusively with barriers.
    let topo = Topology::new(1, 4);
    let cb = 16 * 8;
    let mut sched = record(topo, BufSizes::new(cb, cb), |c| {
        intra_reduce_chunked(c, 16, ReduceOp::Sum, Datatype::Double);
    });
    hb::check(&sched).expect("pristine schedule is clean");
    kill_first(&mut sched, 1, |o| matches!(o, Op::NodeBarrier), "barrier");
    assert_flagged(
        &sched,
        |v| matches!(v, Violation::BarrierShortfall { node: 0, .. }),
        "a barrier-shortfall violation",
    );
}

#[test]
fn dropped_wait_is_flagged_as_race() {
    // Ring allgather forwards each received chunk; without the wait the
    // forwarding read races the delivery write.
    let topo = Topology::new(4, 1);
    let p = AllgatherParams { cb: 32 };
    let mut sched = record_with_sizes(topo, p.buf_sizes(topo), |c| allgather_ring(c, &p));
    hb::check(&sched).expect("pristine schedule is clean");
    let ops = sched.programs()[2].ops.clone();
    let wait_on_recv = |o: &Op| match o {
        Op::Wait { req } => matches!(ops[req.0], Op::IRecv { .. }),
        _ => false,
    };
    kill_first(&mut sched, 2, wait_on_recv, "wait-on-recv");
    assert_flagged(
        &sched,
        |v| matches!(v, Violation::Race { a, b, .. } if a.at_delivery || b.at_delivery),
        "a delivery/read race",
    );
}

#[test]
fn mistagged_recv_is_flagged() {
    let topo = Topology::new(4, 1);
    let p = AllgatherParams { cb: 32 };
    let mut sched = record_with_sizes(topo, p.buf_sizes(topo), |c| allgather_ring(c, &p));
    let ops = &mut sched.programs_mut()[1].ops;
    let i = ops
        .iter()
        .position(|o| matches!(o, Op::IRecv { .. }))
        .expect("ring allgather receives");
    if let Op::IRecv { tag, .. } = &mut ops[i] {
        *tag += 1000;
    }
    assert_flagged(
        &sched,
        |v| matches!(v, Violation::UnmatchedRecv { rank: 1, .. }),
        "an unmatched-recv violation",
    );
}

#[test]
fn dropped_signal_is_flagged() {
    // The intranode broadcast orders shared reads with signal/wait_flag;
    // killing one signal both starves the wait and un-orders a read.
    let topo = Topology::new(1, 4);
    let cb = 64;
    let mut sched = record(topo, BufSizes::new(cb, cb), |c| {
        pipmcoll_core::mcoll::intranode::intra_bcast_small(c, cb);
    });
    hb::check(&sched).expect("pristine schedule is clean");
    let rank = (0..topo.world_size())
        .find(|&r| {
            sched.programs()[r]
                .ops
                .iter()
                .any(|o| matches!(o, Op::Signal { .. }))
        })
        .expect("intra_bcast_small signals");
    kill_first(
        &mut sched,
        rank,
        |o| matches!(o, Op::Signal { .. }),
        "signal",
    );
    assert_flagged(
        &sched,
        |v| {
            matches!(
                v,
                Violation::StarvedWait { .. } | Violation::Race { .. } | Violation::Deadlock { .. }
            )
        },
        "a starved-wait, race or deadlock violation",
    );
}

#[test]
fn dropped_post_is_flagged() {
    let topo = Topology::new(2, 3);
    let spec = CollectiveSpec::Scatter(ScatterParams { cb: 24, root: 0 });
    let mut sched = build_schedule(LibraryProfile::PipMColl, topo, &spec);
    hb::check(&sched).expect("pristine schedule is clean");
    let rank = (0..topo.world_size())
        .find(|&r| {
            sched.programs()[r]
                .ops
                .iter()
                .any(|o| matches!(o, Op::PostAddr { .. }))
        })
        .expect("PipMColl scatter posts addresses");
    kill_first(
        &mut sched,
        rank,
        |o| matches!(o, Op::PostAddr { .. }),
        "post",
    );
    assert_flagged(
        &sched,
        |v| matches!(v, Violation::UnpostedSlot { .. }),
        "an unposted-slot violation",
    );
}

/// Every schedule in the correctness-matrix grid must pass the analyzer
/// unmodified: the mutants above only count as detections if the pristine
/// originals produce zero violations.
#[test]
fn no_false_positives_across_grid() {
    let shapes = [(1, 1), (1, 4), (2, 2), (3, 3), (4, 2), (5, 3), (8, 2)];
    for lib in LibraryProfile::ALL {
        for (nodes, ppn) in shapes {
            let topo = Topology::new(nodes, ppn);
            for spec in [
                CollectiveSpec::Scatter(ScatterParams { cb: 96, root: 0 }),
                CollectiveSpec::Allgather(AllgatherParams { cb: 96 }),
                CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(48)),
            ] {
                let sched = build_schedule(lib, topo, &spec);
                let rep = hb::check(&sched).unwrap_or_else(|e| {
                    panic!(
                        "false positive: {} {nodes}x{ppn} {spec:?}:\n{e}",
                        lib.name()
                    )
                });
                assert!(rep.events > 0);
            }
        }
    }
}
