//! Property tests over the discrete-event engine itself: conservation and
//! determinism invariants that must hold for *any* collective at *any*
//! shape — not just the ones the figures use.

use pipmcoll_core::{
    build_schedule, run_collective, AllgatherParams, AllreduceParams, CollectiveSpec,
    LibraryProfile, ScatterParams,
};
use pipmcoll_engine::simulate;
use pipmcoll_model::{presets, SimTime};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = CollectiveSpec> {
    prop_oneof![
        (1usize..600).prop_map(|cb| CollectiveSpec::Scatter(ScatterParams { cb, root: 0 })),
        (1usize..600).prop_map(|cb| CollectiveSpec::Allgather(AllgatherParams { cb })),
        (1usize..200).prop_map(|c| CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(c))),
    ]
}

fn arb_lib() -> impl Strategy<Value = LibraryProfile> {
    (0usize..LibraryProfile::ALL.len()).prop_map(|i| LibraryProfile::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Two simulations of the same schedule are bit-identical.
    #[test]
    fn simulation_is_deterministic(
        nodes in 1usize..6,
        ppn in 1usize..5,
        spec in arb_spec(),
        lib in arb_lib(),
    ) {
        let machine = presets::bebop(nodes, ppn);
        let a = run_collective(lib, machine, &spec).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let b = run_collective(lib, machine, &spec).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.rank_finish, b.rank_finish);
        prop_assert_eq!(a.breakdown, b.breakdown);
        prop_assert_eq!(a.net_msgs, b.net_msgs);
    }

    /// Every rank's category breakdown sums exactly to its finish time
    /// (all clock advance is attributed, nothing double-counted).
    #[test]
    fn breakdown_conserves_time(
        nodes in 1usize..6,
        ppn in 1usize..5,
        spec in arb_spec(),
        lib in arb_lib(),
    ) {
        let machine = presets::bebop(nodes, ppn);
        let r = run_collective(lib, machine, &spec).map_err(|e| TestCaseError::fail(e.to_string()))?;
        for (rank, row) in r.breakdown.iter().enumerate() {
            let sum: SimTime = row.iter().copied().sum();
            prop_assert_eq!(
                sum, r.rank_finish[rank],
                "rank {} attribution mismatch", rank
            );
        }
        prop_assert_eq!(
            r.makespan,
            r.rank_finish.iter().copied().fold(SimTime::ZERO, SimTime::max)
        );
    }

    /// The engine's traffic counters agree with the schedule's static
    /// accounting.
    #[test]
    fn traffic_counters_match_schedule(
        nodes in 1usize..6,
        ppn in 1usize..5,
        spec in arb_spec(),
        lib in arb_lib(),
    ) {
        let machine = presets::bebop(nodes, ppn);
        let sched = build_schedule(lib, machine.topo, &spec);
        let cfg = lib.engine_config(machine, spec.cb());
        let r = simulate(&cfg, &sched).map_err(|e| TestCaseError::fail(e.to_string()))?;
        // Static counts include intranode point-to-point; split by locality.
        let mut net_bytes = 0u64;
        let mut net_msgs = 0u64;
        for (rank, prog) in sched.programs().iter().enumerate() {
            for op in &prog.ops {
                let (dst, bytes) = match op {
                    pipmcoll_sched::Op::ISend { dst, src, .. } => (*dst, src.len as u64),
                    pipmcoll_sched::Op::ISendShared { dst, src, .. } => (*dst, src.len as u64),
                    _ => continue,
                };
                if !machine.topo.same_node(rank, dst) {
                    net_bytes += bytes;
                    net_msgs += 1;
                }
            }
        }
        prop_assert_eq!(r.net_bytes, net_bytes);
        prop_assert_eq!(r.net_msgs, net_msgs);
        prop_assert_eq!(r.ops_executed, sched.total_ops());
    }

    /// Latency is monotone (within slack) in message size for a fixed
    /// library and shape — bigger payloads never finish meaningfully
    /// earlier.
    #[test]
    fn latency_monotone_in_size(
        nodes in 2usize..6,
        ppn in 1usize..5,
        cb in 8usize..256,
        lib in arb_lib(),
    ) {
        let machine = presets::bebop(nodes, ppn);
        let t1 = run_collective(lib, machine, &CollectiveSpec::Allgather(AllgatherParams { cb }))
            .map_err(|e| TestCaseError::fail(e.to_string()))?
            .makespan;
        let t2 = run_collective(
            lib,
            machine,
            &CollectiveSpec::Allgather(AllgatherParams { cb: cb * 4 }),
        )
        .map_err(|e| TestCaseError::fail(e.to_string()))?
        .makespan;
        prop_assert!(
            t2.as_ps() + 1_000 >= t1.as_ps(),
            "{} shrank from {} to {} when cb grew 4x",
            lib.name(), t1, t2
        );
    }

    /// Adding nodes never makes a fixed-size collective complete faster
    /// than half its smaller-cluster time (sanity against accounting bugs
    /// that drop whole phases at larger scales).
    #[test]
    fn scaling_is_sane(
        ppn in 1usize..5,
        cb in 8usize..128,
        lib in arb_lib(),
    ) {
        let small = run_collective(
            lib,
            presets::bebop(2, ppn),
            &CollectiveSpec::Allgather(AllgatherParams { cb }),
        )
        .map_err(|e| TestCaseError::fail(e.to_string()))?
        .makespan;
        let large = run_collective(
            lib,
            presets::bebop(6, ppn),
            &CollectiveSpec::Allgather(AllgatherParams { cb }),
        )
        .map_err(|e| TestCaseError::fail(e.to_string()))?
        .makespan;
        prop_assert!(large * 2 > small, "{}: 6 nodes {large} vs 2 nodes {small}", lib.name());
    }
}
