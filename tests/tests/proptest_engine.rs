//! Randomized-property tests over the discrete-event engine itself:
//! conservation and determinism invariants that must hold for *any*
//! collective at *any* shape — not just the ones the figures use.
//! Driven by a seeded in-tree PRNG (deterministic, dependency-free).

use pipmcoll_core::{
    build_schedule, run_collective, AllgatherParams, AllreduceParams, CollectiveSpec,
    LibraryProfile, ScatterParams,
};
use pipmcoll_engine::simulate;
use pipmcoll_integration::TestRng;
use pipmcoll_model::{presets, SimTime};

const CASES: usize = 40;

fn arb_spec(rng: &mut TestRng) -> CollectiveSpec {
    match rng.range(0, 3) {
        0 => CollectiveSpec::Scatter(ScatterParams {
            cb: rng.range(1, 600),
            root: 0,
        }),
        1 => CollectiveSpec::Allgather(AllgatherParams {
            cb: rng.range(1, 600),
        }),
        _ => CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(rng.range(1, 200))),
    }
}

fn arb_lib(rng: &mut TestRng) -> LibraryProfile {
    LibraryProfile::ALL[rng.range(0, LibraryProfile::ALL.len())]
}

/// Two simulations of the same schedule are bit-identical.
#[test]
fn simulation_is_deterministic() {
    let mut rng = TestRng::new(0x1DE7);
    for _ in 0..CASES {
        let (nodes, ppn) = (rng.range(1, 6), rng.range(1, 5));
        let spec = arb_spec(&mut rng);
        let lib = arb_lib(&mut rng);
        let machine = presets::bebop(nodes, ppn);
        let a = run_collective(lib, machine, &spec).unwrap_or_else(|e| panic!("{e}"));
        let b = run_collective(lib, machine, &spec).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.rank_finish, b.rank_finish);
        assert_eq!(a.breakdown, b.breakdown);
        assert_eq!(a.net_msgs, b.net_msgs);
    }
}

/// Every rank's category breakdown sums exactly to its finish time
/// (all clock advance is attributed, nothing double-counted).
#[test]
fn breakdown_conserves_time() {
    let mut rng = TestRng::new(0x2BAD);
    for _ in 0..CASES {
        let (nodes, ppn) = (rng.range(1, 6), rng.range(1, 5));
        let spec = arb_spec(&mut rng);
        let lib = arb_lib(&mut rng);
        let machine = presets::bebop(nodes, ppn);
        let r = run_collective(lib, machine, &spec).unwrap_or_else(|e| panic!("{e}"));
        for (rank, row) in r.breakdown.iter().enumerate() {
            let sum: SimTime = row.iter().copied().sum();
            assert_eq!(
                sum,
                r.rank_finish[rank],
                "rank {rank} attribution mismatch ({} {nodes}x{ppn} {spec:?})",
                lib.name()
            );
        }
        assert_eq!(
            r.makespan,
            r.rank_finish
                .iter()
                .copied()
                .fold(SimTime::ZERO, SimTime::max)
        );
    }
}

/// The engine's traffic counters agree with the schedule's static
/// accounting.
#[test]
fn traffic_counters_match_schedule() {
    let mut rng = TestRng::new(0x3C0DE);
    for _ in 0..CASES {
        let (nodes, ppn) = (rng.range(1, 6), rng.range(1, 5));
        let spec = arb_spec(&mut rng);
        let lib = arb_lib(&mut rng);
        let machine = presets::bebop(nodes, ppn);
        let sched = build_schedule(lib, machine.topo, &spec);
        let cfg = lib.engine_config(machine, spec.cb());
        let r = simulate(&cfg, &sched).unwrap_or_else(|e| panic!("{e}"));
        // Static counts include intranode point-to-point; split by locality.
        let mut net_bytes = 0u64;
        let mut net_msgs = 0u64;
        for (rank, prog) in sched.programs().iter().enumerate() {
            for op in &prog.ops {
                let (dst, bytes) = match op {
                    pipmcoll_sched::Op::ISend { dst, src, .. } => (*dst, src.len as u64),
                    pipmcoll_sched::Op::ISendShared { dst, src, .. } => (*dst, src.len as u64),
                    _ => continue,
                };
                if !machine.topo.same_node(rank, dst) {
                    net_bytes += bytes;
                    net_msgs += 1;
                }
            }
        }
        assert_eq!(r.net_bytes, net_bytes);
        assert_eq!(r.net_msgs, net_msgs);
        assert_eq!(r.ops_executed, sched.total_ops());
    }
}

/// Latency is monotone (within slack) in message size for a fixed
/// library and shape — bigger payloads never finish meaningfully
/// earlier.
#[test]
fn latency_monotone_in_size() {
    let mut rng = TestRng::new(0x4F1E);
    for _ in 0..CASES {
        let (nodes, ppn) = (rng.range(2, 6), rng.range(1, 5));
        let cb = rng.range(8, 256);
        let lib = arb_lib(&mut rng);
        let machine = presets::bebop(nodes, ppn);
        let t1 = run_collective(
            lib,
            machine,
            &CollectiveSpec::Allgather(AllgatherParams { cb }),
        )
        .unwrap_or_else(|e| panic!("{e}"))
        .makespan;
        let t2 = run_collective(
            lib,
            machine,
            &CollectiveSpec::Allgather(AllgatherParams { cb: cb * 4 }),
        )
        .unwrap_or_else(|e| panic!("{e}"))
        .makespan;
        assert!(
            t2.as_ps() + 1_000 >= t1.as_ps(),
            "{} shrank from {t1} to {t2} when cb grew 4x",
            lib.name()
        );
    }
}

/// Adding nodes never makes a fixed-size collective complete faster
/// than half its smaller-cluster time (sanity against accounting bugs
/// that drop whole phases at larger scales).
#[test]
fn scaling_is_sane() {
    let mut rng = TestRng::new(0x5CA1E);
    for _ in 0..CASES {
        let ppn = rng.range(1, 5);
        let cb = rng.range(8, 128);
        let lib = arb_lib(&mut rng);
        let small = run_collective(
            lib,
            presets::bebop(2, ppn),
            &CollectiveSpec::Allgather(AllgatherParams { cb }),
        )
        .unwrap_or_else(|e| panic!("{e}"))
        .makespan;
        let large = run_collective(
            lib,
            presets::bebop(6, ppn),
            &CollectiveSpec::Allgather(AllgatherParams { cb }),
        )
        .unwrap_or_else(|e| panic!("{e}"))
        .makespan;
        assert!(
            large * 2 > small,
            "{}: 6 nodes {large} vs 2 nodes {small}",
            lib.name()
        );
    }
}
