//! Ablation sanity (the knobs must move performance the way the paper's
//! reasoning predicts) and failure injection (corrupted schedules must be
//! rejected, not silently mis-simulated).

use pipmcoll_core::mcoll::{allgather_mcoll_large_opts, allgather_mcoll_small_k};
use pipmcoll_core::{build_schedule, AllgatherParams, CollectiveSpec, LibraryProfile};
use pipmcoll_engine::{simulate, EngineConfig};
use pipmcoll_model::{presets, Mechanism, Topology};
use pipmcoll_sched::dataflow::{execute, SchedulingPolicy};
use pipmcoll_sched::verify::{check_allgather, pattern};
use pipmcoll_sched::{record_with_sizes, Op, Schedule};

fn allgather_sched(
    nodes: usize,
    ppn: usize,
    cb: usize,
    algo: impl FnMut(&mut pipmcoll_sched::TraceComm),
) -> Schedule {
    let topo = Topology::new(nodes, ppn);
    let p = AllgatherParams { cb };
    record_with_sizes(topo, p.buf_sizes(topo), algo)
}

// ---------------------------------------------------------------- ablations

#[test]
fn more_objects_is_faster_at_small_sizes() {
    // Fan-out ablation: k = P must beat k = 1 (the whole point of the
    // multi-object design), with intermediate k in between-ish.
    let (nodes, ppn, cb) = (16usize, 6usize, 64usize);
    let machine = presets::bebop(nodes, ppn);
    let cfg = EngineConfig::pip_mcoll(machine);
    let time_k = |k: usize| {
        let p = AllgatherParams { cb };
        let s = allgather_sched(nodes, ppn, cb, |c| allgather_mcoll_small_k(c, &p, k));
        check_allgather(&s, cb).unwrap();
        simulate(&cfg, &s).unwrap().makespan
    };
    let t1 = time_k(1);
    let t3 = time_k(3);
    let t6 = time_k(6);
    assert!(
        t6 < t1,
        "full multi-object must beat single-leader: {t6} vs {t1}"
    );
    assert!(t3 < t1, "partial fan-out must already help: {t3} vs {t1}");
}

#[test]
fn overlap_saves_time_at_large_sizes() {
    let (nodes, ppn, cb) = (8usize, 6usize, 256 * 1024usize);
    let machine = presets::bebop(nodes, ppn);
    let cfg = EngineConfig::pip_mcoll(machine);
    let p = AllgatherParams { cb };
    let on = allgather_sched(nodes, ppn, cb, |c| allgather_mcoll_large_opts(c, &p, true));
    let off = allgather_sched(nodes, ppn, cb, |c| allgather_mcoll_large_opts(c, &p, false));
    check_allgather(&on, cb).unwrap();
    check_allgather(&off, cb).unwrap();
    let t_on = simulate(&cfg, &on).unwrap().makespan;
    let t_off = simulate(&cfg, &off).unwrap().makespan;
    assert!(
        t_on < t_off,
        "overlap must hide copy time behind the wire: {t_on} vs {t_off}"
    );
}

#[test]
fn mechanism_swap_isolates_the_pip_advantage() {
    // The same MColl algorithm priced over other mechanisms must get
    // slower: POSIX double-copies (hurts large), CMA pays syscalls (hurts
    // small message floods), XPMEM pays attach setup.
    let (nodes, ppn) = (8usize, 6usize);
    let machine = presets::bebop(nodes, ppn);
    let time_with = |mech: Mechanism, cb: usize| {
        let spec = CollectiveSpec::Allgather(AllgatherParams { cb });
        let sched = build_schedule(LibraryProfile::PipMColl, machine.topo, &spec);
        let cfg = EngineConfig::pip_mcoll(machine).with_shared_mech(mech);
        simulate(&cfg, &sched).unwrap().makespan
    };
    for cb in [64usize, 128 * 1024] {
        let pip = time_with(Mechanism::Pip, cb);
        for mech in [
            Mechanism::Posix,
            Mechanism::Cma,
            Mechanism::Limic,
            Mechanism::Xpmem,
        ] {
            let other = time_with(mech, cb);
            assert!(
                pip <= other,
                "cb={cb}: pip {pip} must not lose to {} {other}",
                mech.name()
            );
        }
        // The double copy must visibly hurt the copy-heavy large case.
        if cb > 1024 {
            let posix = time_with(Mechanism::Posix, cb);
            assert!(posix > pip, "double copy must cost at large sizes");
        }
    }
}

// -------------------------------------------------------- failure injection

fn valid_small_sched() -> Schedule {
    let spec = CollectiveSpec::Allgather(AllgatherParams { cb: 32 });
    build_schedule(LibraryProfile::PipMColl, Topology::new(3, 2), &spec)
}

#[test]
fn dropping_a_send_is_caught() {
    let sched = valid_small_sched();
    let mut programs = sched.programs().to_vec();
    // Remove the first internode send we find.
    'outer: for prog in programs.iter_mut() {
        for i in 0..prog.ops.len() {
            if matches!(prog.ops[i], Op::ISendShared { .. } | Op::ISend { .. }) {
                prog.ops.remove(i);
                break 'outer;
            }
        }
    }
    let broken = Schedule::new(sched.topo(), programs);
    assert!(
        broken.validate().is_err(),
        "validator must flag the unmatched receive"
    );
}

#[test]
fn flipping_a_tag_is_caught() {
    let sched = valid_small_sched();
    let mut programs = sched.programs().to_vec();
    'outer: for prog in programs.iter_mut() {
        for op in prog.ops.iter_mut() {
            if let Op::ISendShared { tag, .. } = op {
                *tag ^= 0xdead;
                break 'outer;
            }
        }
    }
    let broken = Schedule::new(sched.topo(), programs);
    assert!(
        broken.validate().is_err(),
        "validator must flag the tag flip"
    );
}

#[test]
fn shrinking_a_recv_region_is_caught() {
    let sched = valid_small_sched();
    let mut programs = sched.programs().to_vec();
    'outer: for prog in programs.iter_mut() {
        for op in prog.ops.iter_mut() {
            if let Op::IRecvShared { dst, .. } = op {
                dst.len /= 2;
                break 'outer;
            }
        }
    }
    let broken = Schedule::new(sched.topo(), programs);
    assert!(
        broken.validate().is_err(),
        "validator must flag the size mismatch"
    );
}

#[test]
fn removing_a_barrier_is_caught() {
    let sched = valid_small_sched();
    let mut programs = sched.programs().to_vec();
    // Remove one rank's first barrier — the per-node count check fires.
    let pos = programs[1]
        .ops
        .iter()
        .position(|o| matches!(o, Op::NodeBarrier))
        .expect("mcoll allgather uses barriers");
    programs[1].ops.remove(pos);
    let broken = Schedule::new(sched.topo(), programs);
    assert!(broken.validate().is_err(), "barrier counts must mismatch");
}

#[test]
fn stray_wait_flag_deadlocks_cleanly() {
    // A wait on a flag nobody signals: static validation flags it, and the
    // interpreter reports a deadlock rather than hanging.
    let sched = valid_small_sched();
    let mut programs = sched.programs().to_vec();
    programs[0].ops.push(Op::WaitFlag { flag: 99, count: 1 });
    let broken = Schedule::new(sched.topo(), programs);
    assert!(
        broken.validate().is_err(),
        "unsatisfiable flag must be flagged"
    );
    let err = execute(&broken, |r| pattern(r, 32), SchedulingPolicy::RoundRobin)
        .expect_err("interpreter must detect the deadlock");
    assert!(err.message.contains("deadlock"), "{err}");
}

#[test]
fn corrupted_remote_offset_is_caught_at_runtime() {
    // Static bounds can't see through the address board; the dataflow
    // interpreter must reject an out-of-window remote access.
    let sched = valid_small_sched();
    let mut programs = sched.programs().to_vec();
    'outer: for prog in programs.iter_mut() {
        for op in prog.ops.iter_mut() {
            if let Op::CopyIn { from, .. } = op {
                from.offset += 1 << 20;
                break 'outer;
            }
        }
    }
    let broken = Schedule::new(sched.topo(), programs);
    let err = execute(&broken, |r| pattern(r, 32), SchedulingPolicy::RoundRobin)
        .expect_err("interpreter must reject the wild access");
    assert!(
        err.message.contains("exceeds posted region"),
        "unexpected error: {err}"
    );
}

#[test]
fn engine_rejects_wrong_topology() {
    let sched = valid_small_sched();
    let machine = presets::bebop(4, 4); // mismatched shape
    let cfg = EngineConfig::pip_mcoll(machine);
    let r = std::panic::catch_unwind(|| simulate(&cfg, &sched));
    assert!(r.is_err(), "topology mismatch must be rejected loudly");
}
