//! Survive-and-complete integration: collectives over the TCP fabric
//! with ranks murdered mid-run must finish among the survivors with
//! results byte-identical to an in-process run on the survivor set.
//!
//! The whole binary runs with `PIPMCOLL_SYNC_TIMEOUT_MS=600` (set
//! before the first `sync_timeout()` call caches the value) so the
//! detect → agree → retry cycle resolves in a couple of seconds, and
//! with heartbeats every 25 ms so node-level suspicion is fast.

use std::sync::{Arc, Once};
use std::time::Instant;

use pipmcoll_core::{
    build_schedule, AllgatherParams, AllreduceParams, CollectiveSpec, LibraryProfile, ScatterParams,
};
use pipmcoll_fabric::{ChaosConfig, ChaosFabric, InProcFabric, TcpConfig, TcpFabric};
use pipmcoll_model::Topology;
use pipmcoll_rt::{run_cluster_ft, run_cluster_verified_on, Algo, FaultPlan};
use pipmcoll_sched::verify::pattern;
use pipmcoll_sched::{BufSizes, Comm};

fn init() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        std::env::set_var("PIPMCOLL_SYNC_TIMEOUT_MS", "600");
        std::env::set_var("PIPMCOLL_HEARTBEAT_MS", "25");
    });
}

struct LibAlgo {
    lib: LibraryProfile,
    spec: CollectiveSpec,
}

impl Algo for LibAlgo {
    fn run<C: Comm>(&self, c: &mut C) {
        match self.spec {
            CollectiveSpec::Scatter(p) => self.lib.scatter(c, &p),
            CollectiveSpec::Allgather(p) => self.lib.allgather(c, &p),
            CollectiveSpec::Allreduce(p) => self.lib.allreduce(c, &p),
        }
    }
}

/// Buffer sizes for `spec` on `topo`, per rank — recomputed for the
/// shrunken topology on retries, exactly as the ft runner requires.
fn sizes_for(lib: LibraryProfile, topo: Topology, spec: &CollectiveSpec) -> Vec<BufSizes> {
    build_schedule(lib, topo, spec)
        .programs()
        .iter()
        .map(|p| p.sizes)
        .collect()
}

/// The ground truth: run `spec` in-process (verified) on the dense
/// ppn=1 topology of `survivors`, feeding each new rank the prefix of
/// its original contribution — the same inputs the ft retry uses.
fn reference_on_survivors(
    lib: LibraryProfile,
    spec: CollectiveSpec,
    survivors: &[usize],
) -> Vec<Vec<u8>> {
    let sub = Topology::new(survivors.len(), 1);
    let sizes = sizes_for(lib, sub, &spec);
    let sizes = &sizes;
    let algo = LibAlgo { lib, spec };
    let res = run_cluster_verified_on(
        Arc::new(InProcFabric::new()),
        sub,
        |j| sizes[j],
        |j| pattern(survivors[j], sizes[j].send),
        &algo,
    );
    res.expect_clean();
    res.recv
}

/// Run `spec` fault-tolerantly over TCP with `lanes` lanes and `plan`,
/// then check every survivor against the in-process reference on the
/// *observed* survivor set: identical committed failed sets, identical
/// bytes. Returns the result for extra per-test assertions.
fn survive_and_check(
    lib: LibraryProfile,
    topo: Topology,
    lanes: usize,
    spec: CollectiveSpec,
    plan: &FaultPlan,
) -> pipmcoll_rt::FtResult {
    let fabric = Arc::new(
        TcpFabric::connect(
            topo,
            TcpConfig {
                lanes,
                ..TcpConfig::default()
            },
        )
        .expect("loopback fabric"),
    );
    let algo = LibAlgo { lib, spec };
    let orig_sizes = sizes_for(lib, topo, &spec);
    let orig_sizes = &orig_sizes;
    let res = run_cluster_ft(
        fabric,
        topo,
        |t, r| {
            if t == topo {
                orig_sizes[r]
            } else {
                sizes_for(lib, t, &spec)[r]
            }
        },
        |r| pattern(r, orig_sizes[r].send),
        &algo,
        plan,
    );
    let world = topo.world_size();
    let survivors: Vec<usize> = (0..world).filter(|r| !res.failed.contains(r)).collect();
    assert_eq!(
        res.killed
            .iter()
            .copied()
            .collect::<std::collections::BTreeSet<_>>(),
        res.failed
            .iter()
            .copied()
            .collect::<std::collections::BTreeSet<_>>(),
        "agreed failed set must be exactly the killed ranks (plan {plan}): {:?}",
        res.failures
    );
    let reference = reference_on_survivors(lib, spec, &survivors);
    for (j, &old) in survivors.iter().enumerate() {
        assert_eq!(
            res.committed[old].as_deref(),
            Some(&res.failed[..]),
            "survivor {old} committed a different failed set (plan {plan})"
        );
        assert_eq!(
            res.recv[old].as_deref(),
            Some(&reference[j][..]),
            "survivor {old} bytes diverge from the inproc survivor run (plan {plan})"
        );
    }
    for &dead in &res.failed {
        assert!(
            res.recv[dead].is_none(),
            "dead rank {dead} must have no output"
        );
    }
    res
}

/// The headline acceptance case: one rank killed mid-collective via the
/// `PIPMCOLL_FAULT` DSL; the survivors complete within 3× sync_timeout
/// with byte-identical results and every survivor names exactly the
/// killed rank.
#[test]
fn single_kill_over_tcp_completes_among_survivors() {
    init();
    std::env::set_var("PIPMCOLL_FAULT", "kill:rank=3@any=1");
    let plan = FaultPlan::from_env();
    std::env::remove_var("PIPMCOLL_FAULT");
    assert_eq!(plan.doomed(), vec![3]);

    let topo = Topology::new(2, 2);
    let lib = LibraryProfile::PipMColl;
    let spec = CollectiveSpec::Allgather(AllgatherParams { cb: 64 });
    let t0 = Instant::now();
    let res = survive_and_check(lib, topo, 2, spec, &plan);
    let elapsed = t0.elapsed();

    assert_eq!(res.killed, vec![3]);
    assert_eq!(res.failed, vec![3]);
    assert_eq!(res.epochs, 2, "one failed attempt, one clean retry");
    assert!(
        res.failures.iter().any(|f| f.rank == Some(3)),
        "failures must name the killed rank: {:?}",
        res.failures
    );
    let budget = pipmcoll_fabric::sync_timeout() * 3;
    assert!(
        elapsed < budget,
        "survive-and-complete took {elapsed:?}, budget {budget:?}"
    );
}

/// Tiny deterministic generator for the kill grid (xorshift64*).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Seeded kill grid: scatter/allgather/allreduce × k ∈ {1, 2, 4} lanes,
/// killing 1–3 ranks at pseudo-random operation counts. Every cell
/// asserts the survivors commit identical failed sets and match the
/// in-process reference on the survivor topology byte-for-byte.
///
/// Rank 0 is never killed: scatter's root (rank 0) is the only rank
/// holding the full input, and a retry cannot conjure bytes the new
/// root never had — a documented limit of the shrink protocol
/// (DESIGN.md §3e).
#[test]
fn seeded_kill_grid_survives_across_collectives_and_lanes() {
    init();
    let lib = LibraryProfile::PipMColl;
    let topo = Topology::new(3, 2);
    let world = topo.world_size();
    let specs = [
        CollectiveSpec::Scatter(ScatterParams { cb: 48, root: 0 }),
        CollectiveSpec::Allgather(AllgatherParams { cb: 48 }),
        CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(8)),
    ];
    let mut rng = Rng(0x5EED_F00D_2026_0807);
    for (i, &spec) in specs.iter().enumerate() {
        for (l, &lanes) in [1usize, 2, 4].iter().enumerate() {
            // Cycle 1, 2, 3 victims across the grid cells.
            let kill_count = 1 + (i + l) % 3;
            let mut victims: Vec<usize> = Vec::new();
            while victims.len() < kill_count {
                let r = 1 + rng.below((world - 1) as u64) as usize;
                if !victims.contains(&r) {
                    victims.push(r);
                }
            }
            // The first victim dies on its very first counted op —
            // guaranteed to fire for every rank in every collective.
            // Extra victims get pseudo-random trigger points; a trigger
            // an op-sparse rank never reaches simply doesn't fire
            // (documented DSL semantics), so the checks are driven by
            // the *observed* kill set.
            let plan_src: Vec<String> = victims
                .iter()
                .enumerate()
                .map(|(v, &r)| {
                    let at = if v == 0 { 1 } else { 1 + rng.below(3) };
                    format!("kill:rank={r}@any={at}")
                })
                .collect();
            let plan = FaultPlan::parse(&plan_src.join(";")).expect("generated plan parses");
            let res = survive_and_check(lib, topo, lanes, spec, &plan);
            assert!(
                !res.killed.is_empty() && res.killed.iter().all(|k| victims.contains(k)),
                "plan {plan} killed {:?}",
                res.killed
            );
            assert!(
                res.epochs >= 2,
                "a kill must force at least one retry (plan {plan})"
            );
        }
    }
}

/// Split-brain e2e: a symmetric network partition (node 0 vs node 1,
/// three ranks a side) severs every internode frame — data, heartbeats
/// and agreement gossip alike. Each side detects the other as silent
/// and runs agreement among the ranks it can still reach, so without a
/// quorum rule the two sides would commit *divergent* failed sets and
/// both "survive" with different worlds. The quorum tie-breaker gives
/// the half holding rank 0 the right to commit; the other half must
/// refuse — resolving `QuorumLost` instead of shrinking — and the
/// committed side completes the collective among itself with bytes
/// identical to the in-process reference.
#[test]
fn symmetric_partition_commits_one_side_and_minority_resolves_quorum_lost() {
    init();
    let topo = Topology::new(2, 3);
    let lib = LibraryProfile::PipMColl;
    let spec = CollectiveSpec::Allgather(AllgatherParams { cb: 48 });
    let tcp = TcpFabric::connect(
        topo,
        TcpConfig {
            lanes: 2,
            ..TcpConfig::default()
        },
    )
    .expect("loopback fabric");
    // Node-index bitmasks: node 0 on one side, node 1 on the other —
    // the wire equivalent of `PIPMCOLL_CHAOS=part:0|1`.
    let fabric = Arc::new(ChaosFabric::new(
        tcp,
        ChaosConfig {
            part_a: 1 << 0,
            part_b: 1 << 1,
            seed: 42,
            ..ChaosConfig::default()
        },
    ));
    let algo = LibAlgo { lib, spec };
    let orig_sizes = sizes_for(lib, topo, &spec);
    let orig_sizes = &orig_sizes;
    let t0 = Instant::now();
    let res = run_cluster_ft(
        fabric,
        topo,
        |t, r| {
            if t == topo {
                orig_sizes[r]
            } else {
                sizes_for(lib, t, &spec)[r]
            }
        },
        |r| pattern(r, orig_sizes[r].send),
        &algo,
        &FaultPlan::none(),
    );
    let elapsed = t0.elapsed();

    // Nobody died — the partition manufactured the suspicion. The side
    // holding rank 0 (the group's lowest member, so the tie-break
    // winner of a 3-vs-3 split) commits the unreachable half; the
    // unreachable half refuses to commit a minority view.
    assert!(res.killed.is_empty(), "no rank was actually killed");
    assert_eq!(
        res.failed,
        vec![3, 4, 5],
        "the rank-0 side must commit exactly the other side: {:?}",
        res.failures
    );
    assert_eq!(
        res.quorum_lost,
        vec![3, 4, 5],
        "the minority side must resolve QuorumLost, not commit"
    );
    // The acceptance property: no two ranks ever committed *different*
    // failed sets. The majority all committed {3,4,5}; the minority
    // committed nothing at all.
    for r in 0..3 {
        assert_eq!(
            res.committed[r].as_deref(),
            Some(&[3usize, 4, 5][..]),
            "majority rank {r} committed a different set"
        );
    }
    for r in 3..6 {
        assert_eq!(
            res.committed[r], None,
            "minority rank {r} must never commit a failed set"
        );
        assert!(
            res.recv[r].is_none(),
            "minority rank {r} must produce no output"
        );
        assert!(
            res.failures
                .iter()
                .any(|f| f.rank == Some(r) && f.detail.contains("quorum lost")),
            "rank {r} must record a typed quorum-lost failure: {:?}",
            res.failures
        );
    }
    // The committed side re-runs on its own three ranks (all intranode,
    // untouched by the partition) and must match the clean reference.
    let reference = reference_on_survivors(lib, spec, &[0, 1, 2]);
    for (r, want) in reference.iter().enumerate() {
        assert_eq!(
            res.recv[r].as_deref(),
            Some(&want[..]),
            "majority rank {r} bytes diverge from the inproc survivor run"
        );
    }
    assert_eq!(res.epochs, 2, "one partitioned attempt, one clean retry");
    // Detection (≤ sync_timeout of silence), bounded agreement sweeps
    // and the intranode retry must all fit the survive-and-complete
    // budget; the minority's QuorumLost resolution happens strictly
    // inside it.
    let budget = pipmcoll_fabric::sync_timeout() * 3;
    assert!(
        elapsed < budget,
        "partitioned run took {elapsed:?}, budget {budget:?}"
    );
}
