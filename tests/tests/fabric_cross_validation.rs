//! Fabric cross-validation: the full collective grid must produce
//! byte-identical results whether internode messages travel over the
//! in-process channel backend or over real loopback TCP sockets with
//! k ∈ {1, 2, 4} striped lanes.
//!
//! The in-process run goes through [`run_cluster_verified_on`], so the
//! schedule is proven race- and deadlock-free once; the TCP runs reuse
//! the proven schedule (the happens-before argument is fabric-
//! independent — every backend provides the same per-channel FIFO
//! matching semantics, enforced by the fabric conformance suite).

use std::sync::Arc;
use std::time::Duration;

use pipmcoll_core::{
    build_schedule, AllgatherParams, AllreduceParams, CollectiveSpec, LibraryProfile, ScatterParams,
};
use pipmcoll_fabric::{ChaosConfig, ChaosFabric, InProcFabric, LanePolicy, TcpConfig, TcpFabric};
use pipmcoll_model::Topology;
use pipmcoll_rt::{run_cluster_on, run_cluster_verified_on, Algo};
use pipmcoll_sched::verify::pattern;
use pipmcoll_sched::{BufSizes, Comm};

struct LibAlgo {
    lib: LibraryProfile,
    spec: CollectiveSpec,
}

impl Algo for LibAlgo {
    fn run<C: Comm>(&self, c: &mut C) {
        match self.spec {
            CollectiveSpec::Scatter(p) => self.lib.scatter(c, &p),
            CollectiveSpec::Allgather(p) => self.lib.allgather(c, &p),
            CollectiveSpec::Allreduce(p) => self.lib.allreduce(c, &p),
        }
    }
}

/// Run `spec` under `lib` over in-process channels (verified) and over
/// TCP with each lane count; all results must be byte-identical.
fn cross_validate(lib: LibraryProfile, nodes: usize, ppn: usize, spec: CollectiveSpec) {
    let topo = Topology::new(nodes, ppn);
    let algo = LibAlgo { lib, spec };
    let sizes: Vec<BufSizes> = build_schedule(lib, topo, &spec)
        .programs()
        .iter()
        .map(|p| p.sizes)
        .collect();
    let sizes = &sizes;
    let reference = run_cluster_verified_on(
        Arc::new(InProcFabric::new()),
        topo,
        |r| sizes[r],
        |r| pattern(r, sizes[r].send),
        &algo,
    );
    for lanes in [1usize, 2, 4] {
        let fabric = Arc::new(
            TcpFabric::connect(
                topo,
                TcpConfig {
                    lanes,
                    ..TcpConfig::default()
                },
            )
            .expect("loopback fabric"),
        );
        let res = run_cluster_on(
            Arc::clone(&fabric) as Arc<dyn pipmcoll_fabric::Fabric>,
            topo,
            |r| sizes[r],
            |r| pattern(r, sizes[r].send),
            1,
            |c| algo.run(c),
        );
        assert_eq!(
            res.recv,
            reference.recv,
            "{} {nodes}x{ppn} {spec:?}: tcp fabric (k={lanes}) diverges from inproc",
            lib.name()
        );
        // Same schedule → same pt2pt message count. InProc has no
        // topology, so it books everything as lane traffic; TCP splits
        // node-local messages out — compare the grand totals, and check
        // that real internode traffic did cross the sockets.
        let tcp_total = res.fabric_stats.total_msgs() + res.fabric_stats.local_msgs;
        let ref_total = reference.fabric_stats.total_msgs() + reference.fabric_stats.local_msgs;
        assert_eq!(
            tcp_total,
            ref_total,
            "{} {nodes}x{ppn} k={lanes}: tcp and inproc disagree on pt2pt message count",
            lib.name()
        );
        if nodes > 1 {
            assert!(
                res.fabric_stats.total_msgs() > 0,
                "{} {nodes}x{ppn} k={lanes}: no traffic crossed the sockets",
                lib.name()
            );
        }
    }
}

/// Run `spec` over TCP wrapped in deterministic chaos (seeded 5% eager
/// drops, 2% duplicates, 0–5 ms injected delay) for each lane count; the
/// ack/retransmit + sequence-dedup machinery must make the run
/// indistinguishable from the clean in-process reference — byte-identical
/// buffers and an empty failure report. Returns the total retransmit
/// count so callers can assert the recovery machinery actually worked.
fn chaos_cross_validate(
    lib: LibraryProfile,
    nodes: usize,
    ppn: usize,
    spec: CollectiveSpec,
) -> u64 {
    let topo = Topology::new(nodes, ppn);
    let algo = LibAlgo { lib, spec };
    let sizes: Vec<BufSizes> = build_schedule(lib, topo, &spec)
        .programs()
        .iter()
        .map(|p| p.sizes)
        .collect();
    let sizes = &sizes;
    let reference = run_cluster_verified_on(
        Arc::new(InProcFabric::new()),
        topo,
        |r| sizes[r],
        |r| pattern(r, sizes[r].send),
        &algo,
    );
    reference.expect_clean();
    let mut retransmits = 0;
    for lanes in [1usize, 2, 4] {
        let tcp = TcpFabric::connect(
            topo,
            TcpConfig {
                lanes,
                // Fast retransmit clock so injected drops recover well
                // inside the test budget.
                rto: Duration::from_millis(5),
                ..TcpConfig::default()
            },
        )
        .expect("loopback fabric");
        let chaos = ChaosConfig {
            drop: 0.05,
            dup: 0.02,
            delay: Duration::from_millis(5),
            seed: 7 + lanes as u64,
            ..ChaosConfig::default()
        };
        let cf = Arc::new(ChaosFabric::new(tcp, chaos));
        let fabric: Arc<dyn pipmcoll_fabric::Fabric> = cf.clone();
        // Several iterations through one chaos stream: the fate RNG
        // advances across iterations, so the drop/dup events land at
        // different frames each round instead of replaying the same
        // (possibly drop-free) prefix of the sequence.
        let res = run_cluster_on(
            fabric,
            topo,
            |r| sizes[r],
            |r| pattern(r, sizes[r].send),
            5,
            |c| algo.run(c),
        );
        assert!(
            res.failures.is_empty(),
            "{} {nodes}x{ppn} k={lanes} {spec:?}: chaos run recorded failures: {:?}",
            lib.name(),
            res.failures
        );
        assert_eq!(
            res.recv,
            reference.recv,
            "{} {nodes}x{ppn} {spec:?}: chaotic tcp fabric (k={lanes}) diverges from inproc",
            lib.name()
        );
        assert!(
            res.fabric_stats.retransmits >= cf.wire().dropped(),
            "{} {nodes}x{ppn} k={lanes}: {} injected drops but only {} retransmits",
            lib.name(),
            cf.wire().dropped(),
            res.fabric_stats.retransmits
        );
        retransmits += res.fabric_stats.retransmits;
    }
    retransmits
}

/// The dirty-wire grid: seeded bit-flip corruption on top of drops and
/// duplicates, for each lane policy and each lane count. Every injected
/// flip is confined to the CRC field + payload, so it must surface as a
/// receiver-side checksum mismatch (`corrupt_frames`) and be healed by
/// the same retransmit path that absorbs drops — the run must stay
/// byte-identical to the clean in-process reference with zero rank
/// failures. Returns the total injected-corruption count so the caller
/// can assert the grid was not vacuously clean.
fn dirty_cross_validate(
    lib: LibraryProfile,
    nodes: usize,
    ppn: usize,
    spec: CollectiveSpec,
    policy: LanePolicy,
) -> u64 {
    let topo = Topology::new(nodes, ppn);
    let algo = LibAlgo { lib, spec };
    let sizes: Vec<BufSizes> = build_schedule(lib, topo, &spec)
        .programs()
        .iter()
        .map(|p| p.sizes)
        .collect();
    let sizes = &sizes;
    let reference = run_cluster_verified_on(
        Arc::new(InProcFabric::new()),
        topo,
        |r| sizes[r],
        |r| pattern(r, sizes[r].send),
        &algo,
    );
    reference.expect_clean();
    let mut injected = 0;
    for lanes in [1usize, 2, 4] {
        let tcp = TcpFabric::connect(
            topo,
            TcpConfig {
                lanes,
                lane_policy: policy,
                rto: Duration::from_millis(5),
                ..TcpConfig::default()
            },
        )
        .expect("loopback fabric");
        let chaos = ChaosConfig {
            corrupt: 0.02,
            drop: 0.05,
            dup: 0.02,
            delay: Duration::from_millis(5),
            seed: 0xD1271 + lanes as u64,
            ..ChaosConfig::default()
        };
        let cf = Arc::new(ChaosFabric::new(tcp, chaos));
        let fabric: Arc<dyn pipmcoll_fabric::Fabric> = cf.clone();
        // 20 iterations through one chaos stream: these collectives put
        // only a few dozen eager frames on the wire per iteration, and a
        // 2% corrupt roll (drawn after drop and dup pass) needs a few
        // hundred frames before flips land reliably inside the run.
        let res = run_cluster_on(
            fabric,
            topo,
            |r| sizes[r],
            |r| pattern(r, sizes[r].send),
            20,
            |c| algo.run(c),
        );
        assert!(
            res.failures.is_empty(),
            "{} {nodes}x{ppn} k={lanes} {policy:?} {spec:?}: dirty run recorded failures: {:?}",
            lib.name(),
            res.failures
        );
        assert_eq!(
            res.recv,
            reference.recv,
            "{} {nodes}x{ppn} {spec:?}: dirty tcp fabric (k={lanes}, {policy:?}) diverges from inproc",
            lib.name()
        );
        // Every injected flip is an odd number of bit flips inside the
        // CRC-covered region, so each delivered corrupt frame must be
        // caught and counted — never silently accepted.
        assert!(
            res.fabric_stats.corrupt_frames >= cf.wire().corrupted(),
            "{} {nodes}x{ppn} k={lanes} {policy:?}: {} injected flips but only {} \
             checksum rejections — corrupt frames are being accepted",
            lib.name(),
            cf.wire().corrupted(),
            res.fabric_stats.corrupt_frames
        );
        // A caught corruption is a lost frame: the retransmit machinery
        // must have re-sent at least one frame per drop *and* per flip.
        assert!(
            res.fabric_stats.retransmits >= cf.wire().dropped() + cf.wire().corrupted(),
            "{} {nodes}x{ppn} k={lanes} {policy:?}: {} drops + {} flips but only {} retransmits",
            lib.name(),
            cf.wire().dropped(),
            cf.wire().corrupted(),
            res.fabric_stats.retransmits
        );
        injected += cf.wire().corrupted();
    }
    injected
}

#[test]
fn collective_grid_survives_dirty_wire() {
    // One spec per collective family × both lane policies, each over
    // k ∈ {1, 2, 4} lanes with seeded corrupt:0.02,drop:0.05,dup:0.02.
    // Injected corruptions are summed across the grid: the test is
    // vacuous unless some frame was actually flipped on the wire.
    let mut injected = 0;
    for policy in [LanePolicy::Modulo, LanePolicy::Stripe] {
        injected += dirty_cross_validate(
            LibraryProfile::PipMColl,
            2,
            3,
            CollectiveSpec::Scatter(ScatterParams { cb: 256, root: 0 }),
            policy,
        );
        injected += dirty_cross_validate(
            LibraryProfile::PipMColl,
            3,
            2,
            CollectiveSpec::Allgather(AllgatherParams { cb: 128 }),
            policy,
        );
        injected += dirty_cross_validate(
            LibraryProfile::IntelMpi,
            2,
            3,
            CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(100)),
            policy,
        );
    }
    assert!(
        injected > 0,
        "seeded 2% corruption over the whole grid flipped no frames — \
         corruption injection is not wired up"
    );
}

#[test]
fn scatter_grid_over_tcp() {
    for lib in [LibraryProfile::PipMColl, LibraryProfile::IntelMpi] {
        for (nodes, ppn) in [(2, 3), (3, 2)] {
            for cb in [16usize, 256] {
                cross_validate(
                    lib,
                    nodes,
                    ppn,
                    CollectiveSpec::Scatter(ScatterParams { cb, root: 0 }),
                );
            }
        }
    }
}

#[test]
fn allgather_grid_over_tcp() {
    for lib in [LibraryProfile::PipMColl, LibraryProfile::PipMpich] {
        for (nodes, ppn) in [(2, 3), (3, 2)] {
            for cb in [32usize, 128] {
                cross_validate(
                    lib,
                    nodes,
                    ppn,
                    CollectiveSpec::Allgather(AllgatherParams { cb }),
                );
            }
        }
    }
    // Large-message ring path (and, over TCP, the rendezvous protocol).
    cross_validate(
        LibraryProfile::PipMColl,
        3,
        2,
        CollectiveSpec::Allgather(AllgatherParams { cb: 96 * 1024 }),
    );
}

#[test]
fn allreduce_grid_over_tcp() {
    for lib in [LibraryProfile::PipMColl, LibraryProfile::Mvapich2] {
        for (nodes, ppn) in [(2, 3), (3, 2)] {
            for count in [9usize, 100] {
                cross_validate(
                    lib,
                    nodes,
                    ppn,
                    CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(count)),
                );
            }
        }
    }
    // Large-message reduce-scatter + ring path.
    cross_validate(
        LibraryProfile::PipMColl,
        2,
        3,
        CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(8192)),
    );
}

#[test]
fn collective_grid_survives_seeded_chaos() {
    // One spec per collective family, exercising eager traffic (small
    // counts) and the rendezvous path (large allgather), each over
    // k ∈ {1, 2, 4} chaotic lanes. Retransmits are summed across the
    // whole grid: with 5% injected drop some frame must have needed the
    // ack/backoff recovery path, otherwise this test is vacuous.
    let mut retransmits = 0;
    retransmits += chaos_cross_validate(
        LibraryProfile::PipMColl,
        2,
        3,
        CollectiveSpec::Scatter(ScatterParams { cb: 256, root: 0 }),
    );
    retransmits += chaos_cross_validate(
        LibraryProfile::PipMColl,
        3,
        2,
        CollectiveSpec::Allgather(AllgatherParams { cb: 128 }),
    );
    retransmits += chaos_cross_validate(
        LibraryProfile::IntelMpi,
        2,
        3,
        CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(100)),
    );
    assert!(
        retransmits > 0,
        "seeded 5% drop over the whole grid produced no retransmits — \
         chaos injection or recovery is not wired up"
    );
}
