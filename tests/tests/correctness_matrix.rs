//! Correctness matrix: every library profile × every collective × a grid of
//! cluster shapes and sizes, all verified against MPI semantics through the
//! race-checked dataflow interpreter.

use pipmcoll_core::{
    AllgatherParams, AllreduceParams, CollectiveSpec, LibraryProfile, ScatterParams,
};
use pipmcoll_integration::verify_collective;

const SHAPES: [(usize, usize); 7] = [(1, 1), (1, 4), (2, 2), (3, 3), (4, 2), (5, 3), (8, 2)];

#[test]
fn scatter_matrix() {
    for lib in LibraryProfile::ALL {
        for (nodes, ppn) in SHAPES {
            for cb in [1usize, 8, 64, 1000] {
                let spec = CollectiveSpec::Scatter(ScatterParams { cb, root: 0 });
                verify_collective(lib, nodes, ppn, &spec)
                    .unwrap_or_else(|e| panic!("{} {nodes}x{ppn} cb={cb}: {e}", lib.name()));
            }
        }
    }
}

#[test]
fn allgather_matrix() {
    for lib in LibraryProfile::ALL {
        for (nodes, ppn) in SHAPES {
            for cb in [1usize, 16, 100, 1024] {
                let spec = CollectiveSpec::Allgather(AllgatherParams { cb });
                verify_collective(lib, nodes, ppn, &spec)
                    .unwrap_or_else(|e| panic!("{} {nodes}x{ppn} cb={cb}: {e}", lib.name()));
            }
        }
    }
}

#[test]
fn allreduce_matrix() {
    for lib in LibraryProfile::ALL {
        for (nodes, ppn) in SHAPES {
            for count in [1usize, 7, 64, 300] {
                let spec = CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(count));
                verify_collective(lib, nodes, ppn, &spec)
                    .unwrap_or_else(|e| panic!("{} {nodes}x{ppn} count={count}: {e}", lib.name()));
            }
        }
    }
}

#[test]
fn allgather_exercises_both_mcoll_algorithms_via_dispatch() {
    // Below and above the 64 kB switch-point.
    for cb in [1024usize, 64 * 1024, 128 * 1024] {
        let spec = CollectiveSpec::Allgather(AllgatherParams { cb });
        verify_collective(LibraryProfile::PipMColl, 3, 2, &spec)
            .unwrap_or_else(|e| panic!("cb={cb}: {e}"));
    }
}

#[test]
fn allreduce_exercises_both_mcoll_algorithms_via_dispatch() {
    // Below and above the 8 k-count switch-point.
    for count in [512usize, 8 * 1024, 16 * 1024] {
        let spec = CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(count));
        verify_collective(LibraryProfile::PipMColl, 3, 2, &spec)
            .unwrap_or_else(|e| panic!("count={count}: {e}"));
    }
}

#[test]
fn scatter_nonzero_local_root_all_libraries() {
    for lib in LibraryProfile::ALL {
        // Root = local root of node 1 in a 3x2 cluster.
        let spec = CollectiveSpec::Scatter(ScatterParams { cb: 32, root: 2 });
        verify_collective(lib, 3, 2, &spec).unwrap_or_else(|e| panic!("{}: {e}", lib.name()));
    }
}

#[test]
fn wide_single_node_cluster() {
    // Everything intranode (N = 1, wide P) — pure PiP paths for MColl.
    for lib in [LibraryProfile::PipMColl, LibraryProfile::IntelMpi] {
        for spec in [
            CollectiveSpec::Scatter(ScatterParams { cb: 24, root: 0 }),
            CollectiveSpec::Allgather(AllgatherParams { cb: 24 }),
            CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(9)),
        ] {
            verify_collective(lib, 1, 9, &spec)
                .unwrap_or_else(|e| panic!("{} {spec:?}: {e}", lib.name()));
        }
    }
}

#[test]
fn many_nodes_single_rank_each() {
    // P = 1 degenerates multi-object to single-object; must still be exact.
    for lib in [LibraryProfile::PipMColl, LibraryProfile::PipMpich] {
        for spec in [
            CollectiveSpec::Scatter(ScatterParams { cb: 16, root: 0 }),
            CollectiveSpec::Allgather(AllgatherParams { cb: 16 }),
            CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(4)),
        ] {
            verify_collective(lib, 11, 1, &spec)
                .unwrap_or_else(|e| panic!("{} {spec:?}: {e}", lib.name()));
        }
    }
}
