//! Smoke tests for the figure harnesses: run each sweep at toy scale and
//! check the outputs are well-formed (the full 128×18 regeneration happens
//! in `cargo run -p pipmcoll-bench`).

use pipmcoll_bench::{grids, library_sweep, node_sweep};
use pipmcoll_core::{
    AllgatherParams, AllreduceParams, CollectiveSpec, LibraryProfile, ScatterParams,
};

/// One combined test: the harness helpers read `PIPMCOLL_*` from the
/// environment, so scale is pinned once here (tests within a binary share
/// the process environment).
#[test]
fn harness_sweeps_run_at_toy_scale() {
    std::env::set_var("PIPMCOLL_NODES", "4");
    std::env::set_var("PIPMCOLL_PPN", "3");
    std::env::set_var(
        "PIPMCOLL_RESULTS",
        std::env::temp_dir()
            .join("pipmcoll_smoke")
            .to_str()
            .unwrap(),
    );

    // Fig 9-style library sweep.
    let fig = library_sweep(
        "smoke_fig09",
        "smoke",
        "bytes",
        &[16, 64],
        &LibraryProfile::FIGURE_SET,
        |cb| CollectiveSpec::Scatter(ScatterParams { cb, root: 0 }),
    );
    assert_eq!(fig.series.len(), 5);
    for s in &fig.series {
        assert_eq!(s.points.len(), 2);
        for &(_, y) in &s.points {
            assert!(y > 0.0, "{}: non-positive time", s.label);
        }
    }
    let norm = fig.normalised_to_first();
    for &(_, y) in &norm.series[0].points {
        assert_eq!(y, 1.0);
    }
    norm.emit();

    // Fig 6-style node sweep.
    let fig = node_sweep(
        "smoke_fig06",
        "smoke",
        &grids::node_grid(4),
        &[LibraryProfile::PipMColl, LibraryProfile::PipMpich],
        CollectiveSpec::Allgather(AllgatherParams { cb: 16 }),
    );
    assert_eq!(fig.series.len(), 2);
    assert_eq!(fig.series[0].points.len(), 2); // nodes 2, 4
    fig.emit();

    // Fig 14-style sweep hits both sides of the allreduce switch-point.
    let fig = library_sweep(
        "smoke_fig14",
        "smoke",
        "doubles",
        &[1024, 16 * 1024],
        &[LibraryProfile::PipMColl, LibraryProfile::PipMCollSmall],
        |count| CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(count)),
    );
    assert_eq!(fig.series.len(), 2);
    fig.emit();

    // CSV files landed.
    let dir = std::env::temp_dir().join("pipmcoll_smoke");
    for f in ["smoke_fig09.csv", "smoke_fig06.csv", "smoke_fig14.csv"] {
        let content = std::fs::read_to_string(dir.join(f)).expect(f);
        assert!(content.lines().count() >= 3, "{f} too short");
    }
}
