//! Backend cross-validation: the thread runtime (real shared-memory
//! execution) must produce byte-identical results to the dataflow
//! interpreter for the same algorithm, topology and inputs.
//!
//! All execution goes through [`run_cluster_verified`], so every schedule
//! is additionally proven race- and deadlock-free by the happens-before
//! analysis before any thread touches a shared buffer.

use pipmcoll_core::{
    build_schedule, AllgatherParams, AllreduceParams, CollectiveSpec, LibraryProfile, ScatterParams,
};
use pipmcoll_integration::dataflow_recv;
use pipmcoll_model::Topology;
use pipmcoll_rt::{run_cluster_verified, Algo};
use pipmcoll_sched::verify::pattern;
use pipmcoll_sched::{BufSizes, Comm};

/// One library/collective pair as an [`Algo`], so the identical dispatch
/// runs on the recorder and on threads.
struct LibAlgo {
    lib: LibraryProfile,
    spec: CollectiveSpec,
}

impl Algo for LibAlgo {
    fn run<C: Comm>(&self, c: &mut C) {
        match self.spec {
            CollectiveSpec::Scatter(p) => self.lib.scatter(c, &p),
            CollectiveSpec::Allgather(p) => self.lib.allgather(c, &p),
            CollectiveSpec::Allreduce(p) => self.lib.allreduce(c, &p),
        }
    }
}

fn cross_validate(lib: LibraryProfile, nodes: usize, ppn: usize, spec: CollectiveSpec) {
    let topo = Topology::new(nodes, ppn);
    // Reference: record + dataflow interpret.
    let sched = build_schedule(lib, topo, &spec);
    sched.validate().unwrap_or_else(|e| panic!("{e}"));
    let reference = dataflow_recv(&sched);
    // Real execution: same algorithm dispatch on threads, gated by the
    // happens-before analysis.
    let sizes: Vec<BufSizes> = sched.programs().iter().map(|p| p.sizes).collect();
    let sizes2 = sizes.clone();
    let res = run_cluster_verified(
        topo,
        move |r| sizes[r],
        move |r| pattern(r, sizes2[r].send),
        &LibAlgo { lib, spec },
    );
    assert_eq!(
        res.recv,
        reference,
        "{} {nodes}x{ppn} {spec:?}: thread runtime diverges from interpreter",
        lib.name()
    );
}

#[test]
fn scatter_matches_interpreter() {
    cross_validate(
        LibraryProfile::PipMColl,
        3,
        3,
        CollectiveSpec::Scatter(ScatterParams { cb: 64, root: 0 }),
    );
    cross_validate(
        LibraryProfile::IntelMpi,
        2,
        4,
        CollectiveSpec::Scatter(ScatterParams { cb: 32, root: 4 }),
    );
}

#[test]
fn allgather_matches_interpreter() {
    cross_validate(
        LibraryProfile::PipMColl,
        4,
        3,
        CollectiveSpec::Allgather(AllgatherParams { cb: 48 }),
    );
    cross_validate(
        LibraryProfile::PipMpich,
        3,
        2,
        CollectiveSpec::Allgather(AllgatherParams { cb: 16 }),
    );
    // Large-message ring path.
    cross_validate(
        LibraryProfile::PipMColl,
        3,
        2,
        CollectiveSpec::Allgather(AllgatherParams { cb: 64 * 1024 }),
    );
}

#[test]
fn allreduce_matches_interpreter() {
    cross_validate(
        LibraryProfile::PipMColl,
        4,
        2,
        CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(33)),
    );
    cross_validate(
        LibraryProfile::Mvapich2,
        3,
        3,
        CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(100)),
    );
    // Large-message reduce-scatter path.
    cross_validate(
        LibraryProfile::PipMColl,
        2,
        3,
        CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(8192)),
    );
}

#[test]
fn intranode_auxiliaries_match_interpreter() {
    use pipmcoll_core::mcoll::intranode::{intra_bcast_small, intra_reduce_chunked};
    use pipmcoll_model::{Datatype, ReduceOp};

    struct Bcast {
        cb: usize,
    }
    impl Algo for Bcast {
        fn run<C: Comm>(&self, c: &mut C) {
            intra_bcast_small(c, self.cb);
        }
    }
    struct ChunkedReduce {
        count: usize,
    }
    impl Algo for ChunkedReduce {
        fn run<C: Comm>(&self, c: &mut C) {
            intra_reduce_chunked(c, self.count, ReduceOp::Sum, Datatype::Double);
        }
    }

    // Broadcast.
    let topo = Topology::new(1, 6);
    let cb = 96;
    let sched = pipmcoll_sched::record(topo, BufSizes::new(cb, cb), |c| intra_bcast_small(c, cb));
    let reference = dataflow_recv(&sched);
    let res = run_cluster_verified(
        topo,
        |_| BufSizes::new(cb, cb),
        |r| pattern(r, cb),
        &Bcast { cb },
    );
    assert_eq!(res.recv, reference);

    // Chunked reduce.
    let count = 24;
    let cb = count * 8;
    let sched = pipmcoll_sched::record(topo, BufSizes::new(cb, cb), |c| {
        intra_reduce_chunked(c, count, ReduceOp::Sum, Datatype::Double)
    });
    let reference = dataflow_recv(&sched);
    let res = run_cluster_verified(
        topo,
        |_| BufSizes::new(cb, cb),
        |r| pattern(r, cb),
        &ChunkedReduce { count },
    );
    assert_eq!(res.recv, reference);
}

#[test]
fn repeated_iterations_are_stable() {
    // 10 timed iterations must end in the same state as one. The timed
    // runner has no recording pass, so prove the schedule first by hand.
    let topo = Topology::new(2, 3);
    let p = AllgatherParams { cb: 40 };
    let spec = CollectiveSpec::Allgather(p);
    let sched = build_schedule(LibraryProfile::PipMColl, topo, &spec);
    pipmcoll_sched::hb::check(&sched).unwrap_or_else(|e| panic!("{e}"));
    let reference = dataflow_recv(&sched);
    let res = pipmcoll_rt::run_cluster_timed(
        topo,
        |_| BufSizes::new(40, topo.world_size() * 40),
        |r| pattern(r, 40),
        10,
        |c| LibraryProfile::PipMColl.allgather(c, &p),
    );
    assert_eq!(res.recv, reference);
    assert!(res.per_iter() > std::time::Duration::ZERO);
}

#[test]
fn wide_node_stress() {
    // One wide node exercises heavy intranode concurrency on real threads.
    let topo = Topology::new(1, 12);
    let p = AllreduceParams::sum_doubles(200);
    let spec = CollectiveSpec::Allreduce(p);
    let sched = build_schedule(LibraryProfile::PipMColl, topo, &spec);
    let reference = dataflow_recv(&sched);
    for _ in 0..5 {
        let res = run_cluster_verified(
            topo,
            |_| BufSizes::new(1600, 1600),
            |r| pattern(r, 1600),
            &LibAlgo {
                lib: LibraryProfile::PipMColl,
                spec,
            },
        );
        assert_eq!(res.recv, reference, "nondeterminism across real runs");
    }
}
