//! Backend cross-validation: the thread runtime (real shared-memory
//! execution) must produce byte-identical results to the dataflow
//! interpreter for the same algorithm, topology and inputs.

use pipmcoll_core::{
    build_schedule, AllgatherParams, AllreduceParams, CollectiveSpec, LibraryProfile,
    ScatterParams,
};
use pipmcoll_integration::dataflow_recv;
use pipmcoll_model::Topology;
use pipmcoll_rt::run_cluster;
use pipmcoll_sched::verify::pattern;
use pipmcoll_sched::BufSizes;

fn cross_validate(lib: LibraryProfile, nodes: usize, ppn: usize, spec: CollectiveSpec) {
    let topo = Topology::new(nodes, ppn);
    // Reference: record + dataflow interpret.
    let sched = build_schedule(lib, topo, &spec);
    sched.validate().unwrap_or_else(|e| panic!("{e}"));
    let reference = dataflow_recv(&sched);
    // Real execution: same algorithm dispatch on threads.
    let sizes: Vec<BufSizes> = sched.programs().iter().map(|p| p.sizes).collect();
    let sizes2 = sizes.clone();
    let res = run_cluster(
        topo,
        move |r| sizes[r],
        move |r| pattern(r, sizes2[r].send),
        move |c| match spec {
            CollectiveSpec::Scatter(p) => lib.scatter(c, &p),
            CollectiveSpec::Allgather(p) => lib.allgather(c, &p),
            CollectiveSpec::Allreduce(p) => lib.allreduce(c, &p),
        },
    );
    assert_eq!(
        res.recv, reference,
        "{} {nodes}x{ppn} {spec:?}: thread runtime diverges from interpreter",
        lib.name()
    );
}

#[test]
fn scatter_matches_interpreter() {
    cross_validate(
        LibraryProfile::PipMColl,
        3,
        3,
        CollectiveSpec::Scatter(ScatterParams { cb: 64, root: 0 }),
    );
    cross_validate(
        LibraryProfile::IntelMpi,
        2,
        4,
        CollectiveSpec::Scatter(ScatterParams { cb: 32, root: 4 }),
    );
}

#[test]
fn allgather_matches_interpreter() {
    cross_validate(
        LibraryProfile::PipMColl,
        4,
        3,
        CollectiveSpec::Allgather(AllgatherParams { cb: 48 }),
    );
    cross_validate(
        LibraryProfile::PipMpich,
        3,
        2,
        CollectiveSpec::Allgather(AllgatherParams { cb: 16 }),
    );
    // Large-message ring path.
    cross_validate(
        LibraryProfile::PipMColl,
        3,
        2,
        CollectiveSpec::Allgather(AllgatherParams { cb: 64 * 1024 }),
    );
}

#[test]
fn allreduce_matches_interpreter() {
    cross_validate(
        LibraryProfile::PipMColl,
        4,
        2,
        CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(33)),
    );
    cross_validate(
        LibraryProfile::Mvapich2,
        3,
        3,
        CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(100)),
    );
    // Large-message reduce-scatter path.
    cross_validate(
        LibraryProfile::PipMColl,
        2,
        3,
        CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(8192)),
    );
}

#[test]
fn intranode_auxiliaries_match_interpreter() {
    use pipmcoll_core::mcoll::intranode::{intra_bcast_small, intra_reduce_chunked};
    use pipmcoll_model::{Datatype, ReduceOp};

    // Broadcast.
    let topo = Topology::new(1, 6);
    let cb = 96;
    let sched = pipmcoll_sched::record(topo, BufSizes::new(cb, cb), |c| intra_bcast_small(c, cb));
    let reference = dataflow_recv(&sched);
    let res = run_cluster(
        topo,
        |_| BufSizes::new(cb, cb),
        |r| pattern(r, cb),
        |c| intra_bcast_small(c, cb),
    );
    assert_eq!(res.recv, reference);

    // Chunked reduce.
    let count = 24;
    let cb = count * 8;
    let sched = pipmcoll_sched::record(topo, BufSizes::new(cb, cb), |c| {
        intra_reduce_chunked(c, count, ReduceOp::Sum, Datatype::Double)
    });
    let reference = dataflow_recv(&sched);
    let res = run_cluster(
        topo,
        |_| BufSizes::new(cb, cb),
        |r| pattern(r, cb),
        |c| intra_reduce_chunked(c, count, ReduceOp::Sum, Datatype::Double),
    );
    assert_eq!(res.recv, reference);
}

#[test]
fn repeated_iterations_are_stable() {
    // 10 timed iterations must end in the same state as one.
    let topo = Topology::new(2, 3);
    let p = AllgatherParams { cb: 40 };
    let spec = CollectiveSpec::Allgather(p);
    let sched = build_schedule(LibraryProfile::PipMColl, topo, &spec);
    let reference = dataflow_recv(&sched);
    let res = pipmcoll_rt::run_cluster_timed(
        topo,
        |_| BufSizes::new(40, topo.world_size() * 40),
        |r| pattern(r, 40),
        10,
        |c| LibraryProfile::PipMColl.allgather(c, &p),
    );
    assert_eq!(res.recv, reference);
    assert!(res.per_iter() > std::time::Duration::ZERO);
}

#[test]
fn wide_node_stress() {
    // One wide node exercises heavy intranode concurrency on real threads.
    let topo = Topology::new(1, 12);
    let p = AllreduceParams::sum_doubles(200);
    let spec = CollectiveSpec::Allreduce(p);
    let sched = build_schedule(LibraryProfile::PipMColl, topo, &spec);
    let reference = dataflow_recv(&sched);
    for _ in 0..5 {
        let res = run_cluster(
            topo,
            |_| BufSizes::new(1600, 1600),
            |r| pattern(r, 1600),
            |c| LibraryProfile::PipMColl.allreduce(c, &p),
        );
        assert_eq!(res.recv, reference, "nondeterminism across real runs");
    }
}
