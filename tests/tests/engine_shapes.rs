//! Simulator-level shape tests: the qualitative claims of the paper's
//! evaluation must hold at a moderate scale (kept well under the full
//! 128×18 so the suite stays fast; the bench harnesses reproduce the full
//! scale).

use pipmcoll_core::{
    run_collective, AllgatherParams, AllreduceParams, CollectiveSpec, LibraryProfile, ScatterParams,
};
use pipmcoll_engine::pt2pt::sweep_pairs;
use pipmcoll_engine::EngineConfig;
use pipmcoll_model::{presets, MachineConfig};

fn machine(nodes: usize, ppn: usize) -> MachineConfig {
    presets::bebop(nodes, ppn)
}

fn us(lib: LibraryProfile, m: MachineConfig, spec: &CollectiveSpec) -> f64 {
    run_collective(lib, m, spec)
        .unwrap_or_else(|e| panic!("{}: {e}", lib.name()))
        .makespan
        .as_us_f64()
}

#[test]
fn fig1_premise_multi_object_scales() {
    let cfg = EngineConfig::pip_mcoll(machine(2, 18));
    let pts = sweep_pairs(&cfg, 4096, 40).unwrap();
    assert!(
        pts[8].msg_rate > 2.5 * pts[0].msg_rate,
        "message rate scales"
    );
    let tp = sweep_pairs(&cfg, 128 * 1024, 10).unwrap();
    assert!(
        tp.last().unwrap().throughput > 2.0 * tp[0].throughput,
        "throughput scales"
    );
}

#[test]
fn fig6_shape_scatter_beats_baseline_and_scales() {
    let spec = CollectiveSpec::Scatter(ScatterParams { cb: 16, root: 0 });
    for nodes in [4usize, 16] {
        let m = machine(nodes, 6);
        let mcoll = us(LibraryProfile::PipMColl, m, &spec);
        let base = us(LibraryProfile::PipMpich, m, &spec);
        assert!(mcoll < base, "{nodes} nodes: {mcoll} vs {base}");
    }
}

#[test]
fn fig7_shape_allgather_beats_baseline_small() {
    let spec = CollectiveSpec::Allgather(AllgatherParams { cb: 16 });
    let m = machine(16, 6);
    let mcoll = us(LibraryProfile::PipMColl, m, &spec);
    let base = us(LibraryProfile::PipMpich, m, &spec);
    assert!(
        mcoll * 1.5 < base,
        "allgather 16B should win clearly: {mcoll} vs {base}"
    );
}

#[test]
fn fig8_shape_allreduce_beats_baseline_small() {
    let spec = CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(16));
    let m = machine(16, 6);
    let mcoll = us(LibraryProfile::PipMColl, m, &spec);
    let base = us(LibraryProfile::PipMpich, m, &spec);
    assert!(mcoll < base, "{mcoll} vs {base}");
}

#[test]
fn fig9_to_11_shape_mcoll_wins_small_against_all_libraries() {
    let m = machine(12, 6);
    let specs = [
        CollectiveSpec::Scatter(ScatterParams { cb: 256, root: 0 }),
        CollectiveSpec::Allgather(AllgatherParams { cb: 64 }),
        CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(32)),
    ];
    for spec in &specs {
        let mcoll = us(LibraryProfile::PipMColl, m, spec);
        for lib in [
            LibraryProfile::PipMpich,
            LibraryProfile::IntelMpi,
            LibraryProfile::OpenMpi,
            LibraryProfile::Mvapich2,
        ] {
            let other = us(lib, m, spec);
            assert!(
                mcoll < other,
                "{spec:?}: PiP-MColl {mcoll} must beat {} {other}",
                lib.name()
            );
        }
    }
}

#[test]
fn fig13_shape_large_allgather_algorithm_pays_off() {
    // At 256 kB the large-message (ring) algorithm must clearly beat the
    // small-message algorithm used out of its depth (paper: +146%).
    let m = machine(8, 6);
    let spec = CollectiveSpec::Allgather(AllgatherParams { cb: 256 * 1024 });
    let large = us(LibraryProfile::PipMColl, m, &spec);
    let small = us(LibraryProfile::PipMCollSmall, m, &spec);
    assert!(
        large * 1.5 < small,
        "ring must win big at 256kB: {large} vs {small}"
    );
}

#[test]
fn fig13_shape_small_allgather_algorithm_wins_small() {
    let m = machine(8, 6);
    let spec = CollectiveSpec::Allgather(AllgatherParams { cb: 64 });
    let small_algo = us(LibraryProfile::PipMCollSmall, m, &spec);
    let dispatched = us(LibraryProfile::PipMColl, m, &spec);
    // Below the switch-point, PipMColl IS the small algorithm.
    assert_eq!(small_algo, dispatched);
}

#[test]
fn fig14_shape_allreduce_switch_pays_off_at_large_counts() {
    let m = machine(8, 6);
    let spec = CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(512 * 1024));
    let large = us(LibraryProfile::PipMColl, m, &spec);
    let small = us(LibraryProfile::PipMCollSmall, m, &spec);
    assert!(
        large < small,
        "reduce-scatter must win at 512k counts: {large} vs {small}"
    );
}

#[test]
fn fig14_shape_mcoll_loses_midrange_honestly() {
    // The paper reports PiP-MColl falling behind conventional libraries for
    // 1k–16k double counts (Fig. 14 discussion) — the reproduction must
    // show the same honest weakness, not hide it.
    let m = machine(24, 6);
    let spec = CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(2048));
    let mcoll = us(LibraryProfile::PipMColl, m, &spec);
    let intel = us(LibraryProfile::IntelMpi, m, &spec);
    assert!(
        mcoll > intel * 0.8,
        "midrange allreduce should not show a large MColl win: {mcoll} vs {intel}"
    );
}

#[test]
fn baseline_handshake_visible_in_scaling() {
    // PiP-MPICH's per-message size synchronisation must make it slower than
    // an identical library without the handshake.
    let m = machine(4, 8);
    let spec = CollectiveSpec::Allgather(AllgatherParams { cb: 64 });
    let with = us(LibraryProfile::PipMpich, m, &spec);
    let sched = pipmcoll_core::build_schedule(LibraryProfile::PipMpich, m.topo, &spec);
    let cfg_no_handshake = EngineConfig::pip_mcoll(m);
    let without = pipmcoll_engine::simulate(&cfg_no_handshake, &sched)
        .unwrap()
        .makespan
        .as_us_f64();
    assert!(with > without, "{with} vs {without}");
}

#[test]
fn engine_is_deterministic_across_runs() {
    let m = machine(6, 4);
    let spec = CollectiveSpec::Allreduce(AllreduceParams::sum_doubles(100));
    let a = run_collective(LibraryProfile::PipMColl, m, &spec).unwrap();
    let b = run_collective(LibraryProfile::PipMColl, m, &spec).unwrap();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.rank_finish, b.rank_finish);
    assert_eq!(a.net_msgs, b.net_msgs);
}

#[test]
fn mcoll_aggregates_node_blocks_and_finishes_faster() {
    // Node-level aggregation: the radix-(P+1) algorithm moves node blocks
    // through P concurrent objects, finishing faster with far fewer
    // internode messages than the flat per-rank baseline.
    let m = machine(16, 6);
    let spec = CollectiveSpec::Allgather(AllgatherParams { cb: 64 });
    let mcoll = run_collective(LibraryProfile::PipMColl, m, &spec).unwrap();
    let base = run_collective(LibraryProfile::PipMpich, m, &spec).unwrap();
    assert!(mcoll.makespan < base.makespan);
    assert!(
        mcoll.net_msgs < base.net_msgs,
        "aggregation must reduce message count: {} vs {}",
        mcoll.net_msgs,
        base.net_msgs
    );
    assert!(
        mcoll.shared_ops > 0,
        "the multi-object path must actually use shared-address objects"
    );
}

#[test]
fn pip_does_zero_syscalls_conventional_does_many() {
    let m = machine(2, 8);
    let spec = CollectiveSpec::Allgather(AllgatherParams { cb: 1024 });
    let pip = run_collective(LibraryProfile::PipMColl, m, &spec).unwrap();
    let ompi = run_collective(LibraryProfile::OpenMpi, m, &spec).unwrap();
    assert_eq!(pip.syscalls, 0, "PiP never traps into the kernel");
    assert!(
        ompi.syscalls > 0,
        "CMA pays a syscall per intranode transfer"
    );
}

#[test]
fn analytic_and_engine_agree_on_trends() {
    use pipmcoll_model::analytic;
    let m = machine(16, 6);
    let h = m.hockney();
    // Scatter: engine and closed form must both scale ~linearly in cb.
    let t1 = us(
        LibraryProfile::PipMColl,
        m,
        &CollectiveSpec::Scatter(ScatterParams { cb: 4096, root: 0 }),
    );
    let t2 = us(
        LibraryProfile::PipMColl,
        m,
        &CollectiveSpec::Scatter(ScatterParams { cb: 16384, root: 0 }),
    );
    let a1 = analytic::scatter_total(&h, 4096, 6, 16).as_us_f64();
    let a2 = analytic::scatter_total(&h, 16384, 6, 16).as_us_f64();
    let engine_ratio = t2 / t1;
    let analytic_ratio = a2 / a1;
    assert!(
        (engine_ratio / analytic_ratio - 1.0).abs() < 0.75,
        "scaling trends diverge: engine {engine_ratio:.2} vs analytic {analytic_ratio:.2}"
    );
}
